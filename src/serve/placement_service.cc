#include "src/serve/placement_service.h"

#include <algorithm>
#include <cmath>
#include <thread>

#include "src/common/check.h"
#include "src/obs/metrics.h"
#include "src/obs/profiler.h"
#include "src/obs/span_log.h"

namespace optum::serve {
namespace {

// Per-pod residency stream: seeded by pod id alone, so a pod's departure
// round is a pure function of (seed, id, placed_round) — identical across
// shard counts, thread counts, and placement order.
double ResidencyRounds(uint64_t seed, PodId id, double mean_rounds) {
  Rng rng(seed + 0x9e3779b97f4a7c15ULL * (static_cast<uint64_t>(id) + 1));
  return rng.Exponential(1.0 / mean_rounds);
}

// ServeConfig::pipeline_depth is the serve-level knob for the coordinator's
// conflict-round pipelining; the larger of it and the embedded distributed
// config wins, so either surface can request depth.
core::DistributedConfig EffectiveDistributed(const ServeConfig& config) {
  core::DistributedConfig distributed = config.distributed;
  distributed.pipeline_depth =
      std::max(distributed.pipeline_depth, config.pipeline_depth);
  return distributed;
}

}  // namespace

PlacementService::PlacementService(const Workload& workload,
                                   const core::OptumProfiles& profiles,
                                   ClusterState* cluster, ServeConfig config)
    : workload_(workload),
      cluster_(cluster),
      config_(config),
      driver_(workload, config.arrival),
      coordinator_(profiles, EffectiveDistributed(config)),
      queue_(config.queue_capacity_per_shard,
             std::max<size_t>(1, config.distributed.num_schedulers)) {
  OPTUM_CHECK(cluster != nullptr);
  OPTUM_CHECK_GT(config_.max_schedule_per_round, 0u);
  OPTUM_CHECK_GE(config_.max_requeues, 0);
  // The arrival stream is one serial rng; more producers would have to
  // split it, changing the stream (and every row) — so cap at one.
  OPTUM_CHECK_MSG(config_.ingest_threads <= 1,
                  "serve: at most one ingest thread is supported");
  shard_latency_.reserve(queue_.num_shards());
  for (size_t s = 0; s < queue_.num_shards(); ++s) {
    shard_latency_.emplace_back(config_.latency);
  }
  if (config_.keep_exact_latencies) {
    exact_ = std::make_unique<ExactLatencyRing>(config_.exact_capacity);
  }
}

void PlacementService::AttachSinks(const obs::Sinks& sinks) {
  sinks_ = sinks;
  span_log_ = sinks.span_log;
  series_ = sinks.series;
  profiler_ = sinks.profile;
  // The coordinator adopts metrics + span_log and ignores the rest
  // (shard-level logs are attached via shard(i) directly, per its
  // contract).
  coordinator_.AttachSinks(sinks);
  obs::MetricRegistry* registry = sinks.metrics;
  if (registry == nullptr) {
    arrivals_counter_ = nullptr;
    admitted_counter_ = nullptr;
    rejected_counter_ = nullptr;
    placed_counter_ = nullptr;
    dropped_counter_ = nullptr;
    departed_counter_ = nullptr;
    return;
  }
  arrivals_counter_ = registry->counter("serve.arrivals");
  admitted_counter_ = registry->counter("serve.admitted");
  rejected_counter_ = registry->counter("serve.rejected_full");
  placed_counter_ = registry->counter("serve.placed");
  dropped_counter_ = registry->counter("serve.dropped");
  departed_counter_ = registry->counter("serve.departed");
}

void PlacementService::RunRounds(int64_t rounds) {
  if (config_.ingest_threads == 0 || rounds <= 0) {
    for (int64_t i = 0; i < rounds; ++i) {
      RunRound(/*with_arrivals=*/true);
    }
    return;
  }
  // Pipelined ingest: one producer thread generates round r+1's arrivals
  // while the round loop schedules round r, and applies them only at the
  // hand-off barrier inside RunRound — shared state is never touched
  // concurrently (ApplyArrivals runs while the consumer is parked), so the
  // run is bit-identical to inline ingest. The producer covers exactly this
  // call's rounds and is joined before returning; Drain() and later calls
  // are unaffected.
  const int64_t first = round_ + 1;
  const int64_t last = round_ + rounds;
  {
    std::lock_guard<std::mutex> lock(ingest_mu_);
    ingest_allow_ = round_;
    ingest_ready_ = round_;
  }
  ingest_active_ = true;
  std::thread producer([this, first, last] { IngestLoop(first, last); });
  for (int64_t i = 0; i < rounds; ++i) {
    RunRound(/*with_arrivals=*/true);
  }
  producer.join();
  ingest_active_ = false;
}

void PlacementService::IngestLoop(int64_t first, int64_t last) {
  std::vector<PodSpec> specs;
  for (int64_t r = first; r <= last; ++r) {
    specs.clear();
    // Pre-generate round r while the consumer is still scheduling r-1; the
    // driver's rng/pod-id stream is producer-owned for the whole run, so
    // the emitted sequence matches the inline one draw for draw.
    driver_.EmitRound(r, &specs);
    {
      std::unique_lock<std::mutex> lock(ingest_mu_);
      ingest_cv_.wait(lock, [&] { return ingest_allow_ >= r; });
    }
    // The consumer is parked waiting for ingest_ready_ >= r; every mutation
    // below is exclusive and ordered before its wake-up.
    ApplyArrivals(r, specs);
    {
      std::lock_guard<std::mutex> lock(ingest_mu_);
      ingest_ready_ = r;
    }
    ingest_cv_.notify_all();
  }
}

int64_t PlacementService::Drain() {
  // Every queued pod is scheduled at least once per ceil(depth / batch)
  // rounds and survives at most max_requeues failures, so this bound is
  // generous; hitting it means the service stopped making progress.
  const int64_t limit =
      static_cast<int64_t>(queue_.depth() / config_.max_schedule_per_round + 2) *
      (config_.max_requeues + 2);
  int64_t used = 0;
  while (!queue_.empty()) {
    OPTUM_CHECK_MSG(used < limit, "serve: Drain() is not making progress");
    RunRound(/*with_arrivals=*/false);
    ++used;
  }
  return used;
}

void PlacementService::RunRound(bool with_arrivals) {
  ++round_;
  ++counters_.rounds;
  cluster_->set_now(static_cast<Tick>(round_));

  // 1. Arrivals: open-loop — emitted regardless of queue state; the bounded
  // queue answers with backpressure, never by blocking the driver. With an
  // ingest thread, this round's pods were pre-generated during the previous
  // round; open the barrier so the producer applies them, then wait for the
  // hand-off — the application itself runs exclusively while we are parked.
  if (with_arrivals) {
    // One ingest_wait scope per arrivals round, covering both the hand-off
    // barrier wait and the inline emit path — the scope count is invariant
    // across ingest_threads; only the measured ns differ.
    obs::RoundProfiler::Scope ingest_scope(profiler_,
                                           obs::ProfilePhase::kIngestWait, 0);
    if (ingest_active_) {
      {
        std::lock_guard<std::mutex> lock(ingest_mu_);
        ingest_allow_ = round_;
      }
      ingest_cv_.notify_all();
      {
        std::unique_lock<std::mutex> lock(ingest_mu_);
        ingest_cv_.wait(lock, [&] { return ingest_ready_ >= round_; });
      }
    } else {
      arrival_scratch_.clear();
      driver_.EmitRound(round_, &arrival_scratch_);
      ApplyArrivals(round_, arrival_scratch_);
    }
  }

  // 2. Scheduling: one coordinator batch (parallel shard decisions, serial
  // §4.4 conflict resolution) over this round's service-rate slice.
  batch_scratch_.clear();
  spec_scratch_.clear();
  queue_.PopBatch(config_.max_schedule_per_round, &batch_scratch_);
  if (!batch_scratch_.empty()) {
    for (const ServePod* pod : batch_scratch_) {
      spec_scratch_.push_back(&pod->spec);
    }
    const core::DistributedOutcome outcome = coordinator_.ScheduleBatch(
        spec_scratch_, *cluster_,
        [this](const core::ScheduleProposal& winner) { RecordPlacement(winner); });
    counters_.conflicts += outcome.conflicts_resolved;
    counters_.schedule_rounds += outcome.rounds_used;
    for (const auto& [spec, reason] : outcome.unplaced) {
      (void)reason;
      ServePod* pod = pods_by_id_[static_cast<size_t>(spec->id)];
      if (pod->requeues >= config_.max_requeues) {
        ++counters_.dropped;
        if (dropped_counter_ != nullptr) {
          dropped_counter_->Inc();
        }
        continue;
      }
      ++pod->requeues;
      queue_.Requeue(pod);
    }
  }

  // 3. Departures scheduled for this round or earlier (profiled as part of
  // the commit phase: both mutate cluster residency on the serial path).
  {
    obs::RoundProfiler::Scope depart_scope(profiler_,
                                           obs::ProfilePhase::kCommit, 0);
    ProcessDepartures();
  }

  // 4. Pressure sensing + series sampling on the settled end-of-round state
  // (serial; all sinks honor their serial-path contracts).
  {
    obs::RoundProfiler::Scope sweep_scope(profiler_,
                                          obs::ProfilePhase::kPressureSweep, 0);
    SamplePressure();
    if (series_ != nullptr) {
      series_->Sample(static_cast<Tick>(round_));
    }
  }
}

void PlacementService::ApplyArrivals(int64_t round,
                                     const std::vector<PodSpec>& specs) {
  counters_.arrivals += static_cast<int64_t>(specs.size());
  if (arrivals_counter_ != nullptr) {
    arrivals_counter_->Inc(0, specs.size());
  }
  for (const PodSpec& spec : specs) {
    pods_.push_back(ServePod{spec, round});
    ServePod* pod = &pods_.back();
    OPTUM_CHECK_EQ(static_cast<size_t>(spec.id), pods_by_id_.size());
    pods_by_id_.push_back(pod);
    if (span_log_ != nullptr) {
      span_log_->Append({.tick = static_cast<Tick>(round),
                         .pod = spec.id,
                         .phase = obs::SpanPhase::kSubmitted});
    }
    const bool admitted = queue_.Offer(pod);
    if (admitted_counter_ != nullptr) {
      (admitted ? admitted_counter_ : rejected_counter_)->Inc();
    }
  }
}

void PlacementService::SamplePressure() {
  if (pressure_ == nullptr) {
    return;
  }
  // Utilization basis: the Eq. 6 predicted-usage model, not raw request
  // sums — requests oversubscribe capacity ~2.5x by design (overcommit is
  // the point of the paper), so request_sum/capacity reads as permanently
  // saturated. Predicted usage is the measure the feasibility gate bounds,
  // which makes its ceiling (~1.0, drifting slightly above as colocation
  // context shifts) the natural pressure scale.
  const core::OptumScheduler& shard0 = coordinator_.shard(0);
  const core::InterferencePredictor& predictor = shard0.interference_predictor();
  const core::ResourceUsagePredictor& usage = shard0.usage_predictor();
  pressure_->BeginTick(static_cast<Tick>(round_));
  for (const Host& host : cluster_->hosts()) {
    obs::HostPressureInput in;
    const Resources predicted = usage.PredictHost(host, /*incoming=*/nullptr);
    in.cpu_util = host.capacity.cpu > 0.0 ? predicted.cpu / host.capacity.cpu
                                          : 0.0;
    in.mem_util = host.capacity.mem > 0.0 ? predicted.mem / host.capacity.mem
                                          : 0.0;
    int32_t counts[kNumSloClasses];
    CountPodsBySlo(host, counts);
    in.pods_be = counts[static_cast<size_t>(SloClass::kBe)];
    in.pods_ls = counts[static_cast<size_t>(SloClass::kLs)];
    in.pods_lsr = counts[static_cast<size_t>(SloClass::kLsr)];
    const int32_t ls_pods = in.pods_ls + in.pods_lsr;
    if (ls_pods > 0) {
      in.interference =
          predictor.ResidentInterference(host, in.cpu_util, in.mem_util,
                                         /*weight_ls=*/1.0, /*weight_be=*/0.0,
                                         /*lane=*/0) /
          static_cast<double>(ls_pods);
    }
    pressure_->ObserveHost(host.id, in);
  }
  pressure_->EndTick();
}

void PlacementService::RecordPlacement(const core::ScheduleProposal& winner) {
  ServePod* pod = pods_by_id_[static_cast<size_t>(winner.pod)];
  pod->placed_round = round_;
  pod->runtime = cluster_->Place(pod->spec, &AppOf(workload_, pod->spec.app),
                                 winner.host, static_cast<Tick>(round_));
  ++counters_.placed;
  if (placed_counter_ != nullptr) {
    placed_counter_->Inc();
  }

  const double latency_s = static_cast<double>(round_ - pod->submit_round) *
                           config_.arrival.round_seconds;
  latency_seconds_sum_ += latency_s;
  shard_latency_[static_cast<size_t>(pod->spec.id) % queue_.num_shards()].Record(
      latency_s);
  if (exact_ != nullptr) {
    exact_->Record(latency_s);
  }

  if (config_.mean_residency_rounds > 0.0) {
    const double residency = ResidencyRounds(
        config_.residency_seed, pod->spec.id, config_.mean_residency_rounds);
    pod->depart_round = round_ + 1 + static_cast<int64_t>(residency);
    departures_.emplace(pod->depart_round, pod->spec.id);
  }
}

void PlacementService::ProcessDepartures() {
  while (!departures_.empty() && departures_.top().first <= round_) {
    const PodId id = departures_.top().second;
    departures_.pop();
    ServePod* pod = pods_by_id_[static_cast<size_t>(id)];
    cluster_->Remove(pod->runtime);
    pod->runtime = nullptr;
    ++counters_.departed;
    if (departed_counter_ != nullptr) {
      departed_counter_->Inc();
    }
    if (span_log_ != nullptr) {
      span_log_->Append({.tick = static_cast<Tick>(round_),
                         .pod = id,
                         .phase = obs::SpanPhase::kFinished});
    }
  }
}

LatencyHistogram PlacementService::MergedLatency() const {
  LatencyHistogram merged(config_.latency);
  for (const LatencyHistogram& shard : shard_latency_) {
    merged.Merge(shard);
  }
  return merged;
}

std::vector<PodId> PlacementService::PlacedPodIds() const {
  std::vector<PodId> ids;
  ids.reserve(static_cast<size_t>(counters_.placed));
  for (const ServePod& pod : pods_) {
    if (pod.placed_round >= 0) {
      ids.push_back(pod.spec.id);
    }
  }
  return ids;
}

LatencyRow PlacementService::MakeLatencyRow() const {
  LatencyRow row;
  row.hosts = static_cast<int>(cluster_->num_hosts());
  row.shards = queue_.num_shards();
  row.offered_pods_per_sec = config_.arrival.offered_pods_per_sec;
  row.process = ToString(config_.arrival.process);
  row.rounds = counters_.rounds;
  row.round_seconds = config_.arrival.round_seconds;
  row.arrivals = counters_.arrivals;
  row.admitted = queue_.stats().admitted;
  row.rejected_full = queue_.stats().rejected_full;
  row.placed = counters_.placed;
  row.dropped = counters_.dropped;
  row.conflicts = counters_.conflicts;
  const double mean = counters_.placed > 0
                          ? latency_seconds_sum_ / static_cast<double>(counters_.placed)
                          : 0.0;
  FillLatencyPercentiles(MergedLatency(), mean, &row);
  return row;
}

}  // namespace optum::serve
