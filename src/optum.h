// Umbrella header for the Optum library.
//
// Typical downstream flow (see examples/quickstart.cpp):
//   1. Generate or load a workload        -> trace/workload_generator.h
//   2. Run the reference scheduler         -> sched/baselines.h + sim/simulator.h
//   3. Profile its trace offline           -> core/offline_profiler.h
//   4. Schedule with Optum                 -> core/optum_scheduler.h
// or deploy the whole Fig. 17 closed loop  -> core/optum_system.h.
#ifndef OPTUM_SRC_OPTUM_H_
#define OPTUM_SRC_OPTUM_H_

#include "src/common/flags.h"
#include "src/common/table_printer.h"
#include "src/common/types.h"
#include "src/core/deployment.h"
#include "src/core/distributed.h"
#include "src/core/offline_profiler.h"
#include "src/core/optum_scheduler.h"
#include "src/core/optum_system.h"
#include "src/predict/predictor_eval.h"
#include "src/predict/usage_predictor.h"
#include "src/sched/baselines.h"
#include "src/sched/medea.h"
#include "src/sim/simulator.h"
#include "src/trace/scenarios.h"
#include "src/trace/trace_io.h"
#include "src/trace/trace_stats.h"
#include "src/trace/workload_generator.h"

#endif  // OPTUM_SRC_OPTUM_H_
