#include "src/obs/slo.h"

#include <charconv>

#include "src/common/check.h"
#include "src/obs/json_writer.h"
#include "src/obs/schema.h"

namespace optum::obs {
namespace {

void AppendInt(std::string* out, int64_t v) {
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out->append(buf, res.ptr);
}

// Shortest round-trip double via to_chars: deterministic and locale-free.
void AppendDouble(std::string* out, double v) {
  char buf[40];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out->append(buf, res.ptr);
}

}  // namespace

void SloAccumulator::Observe(SloClass slo, int64_t pod_ticks, bool violated) {
  OPTUM_CHECK_GE(pod_ticks, 0);
  const size_t c = static_cast<size_t>(slo);
  observed_[c] += pod_ticks;
  if (violated) {
    violation_[c] += pod_ticks;
  }
}

int64_t SloAccumulator::total_observed_ticks() const {
  int64_t total = 0;
  for (int64_t v : observed_) {
    total += v;
  }
  return total;
}

int64_t SloAccumulator::total_violation_ticks() const {
  int64_t total = 0;
  for (int64_t v : violation_) {
    total += v;
  }
  return total;
}

void SloAccumulator::Merge(const SloAccumulator& other) {
  for (size_t c = 0; c < kNumSloClasses; ++c) {
    observed_[c] += other.observed_[c];
    violation_[c] += other.violation_[c];
  }
}

bool SloAccumulator::operator==(const SloAccumulator& other) const {
  for (size_t c = 0; c < kNumSloClasses; ++c) {
    if (observed_[c] != other.observed_[c] ||
        violation_[c] != other.violation_[c]) {
      return false;
    }
  }
  return true;
}

std::string SloAccumulator::RenderJson(double seconds_per_tick) const {
  std::string out = R"({"schema":")";
  out += kSloSchema;
  out += R"(","seconds_per_tick":)";
  AppendDouble(&out, seconds_per_tick);
  out += R"(,"classes":[)";
  bool first = true;
  for (size_t c = 0; c < kNumSloClasses; ++c) {
    const SloClass slo = static_cast<SloClass>(c);
    const bool schedulable = slo == SloClass::kBe || slo == SloClass::kLs ||
                             slo == SloClass::kLsr;
    if (!schedulable && observed_[c] == 0) {
      continue;
    }
    if (!first) {
      out.push_back(',');
    }
    first = false;
    out += R"({"class":")";
    out += ToString(slo);
    out += R"(","observed_ticks":)";
    AppendInt(&out, observed_[c]);
    out += R"(,"violation_ticks":)";
    AppendInt(&out, violation_[c]);
    out += R"(,"observed_seconds":)";
    AppendDouble(&out, static_cast<double>(observed_[c]) * seconds_per_tick);
    out += R"(,"violation_seconds":)";
    AppendDouble(&out, static_cast<double>(violation_[c]) * seconds_per_tick);
    out.push_back('}');
  }
  out += "]}";
  return out;
}

bool SloAccumulator::WriteJsonFile(const std::string& path,
                                   double seconds_per_tick) const {
  return WriteJsonDocument(path, RenderJson(seconds_per_tick));
}

}  // namespace optum::obs
