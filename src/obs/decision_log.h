// Structured per-placement decision log (observability layer, DESIGN.md
// §9). For every PlaceScored call the scheduler can emit one JSONL record:
// the pod, how many candidates were sampled and feasible, the chosen host,
// and the top-k candidates with their Eq. 11 score broken into its terms
// (usage fit POC/Cap * POM/Cap, weighted interference, and how many
// prediction-cache misses scoring the candidate cost — a warm candidate
// logs 0).
//
// Records are rendered by the serial reduction phase of PlaceScored, so the
// log never sees concurrent appends from one scheduler; distinct schedulers
// must use distinct logs. A null DecisionLog* disables logging at the cost
// of one branch.
#ifndef OPTUM_SRC_OBS_DECISION_LOG_H_
#define OPTUM_SRC_OBS_DECISION_LOG_H_

#include <cstdio>
#include <string>
#include <vector>

#include "src/common/types.h"

namespace optum::obs {

// One scored candidate, in descending score order within the record.
struct CandidateTrace {
  HostId host = -1;
  bool feasible = false;
  double score = 0.0;
  double cpu_util = 0.0;       // predicted post-placement POC/CapC
  double mem_util = 0.0;       // predicted post-placement POM/CapM
  double usage_fit = 0.0;      // Eq. 11 first term: cpu_util * mem_util
  double interference = 0.0;   // Eq. 11 weighted interference sum
  uint64_t cache_misses = 0;   // prediction/slope-cache misses while scoring
};

struct DecisionTrace {
  Tick tick = 0;
  PodId pod = -1;
  AppId app = -1;
  SloClass slo = SloClass::kUnknown;
  size_t candidates_sampled = 0;
  size_t candidates_feasible = 0;
  HostId chosen = -1;          // -1 = rejected
  double chosen_score = 0.0;
  const char* reject_reason = "None";
  std::vector<CandidateTrace> top;  // best-first, at most the log's top_k
};

class DecisionLog {
 public:
  // Opens `path` for writing (truncates). top_k bounds the per-record
  // candidate breakdown.
  explicit DecisionLog(const std::string& path, size_t top_k = 3);
  ~DecisionLog();

  DecisionLog(const DecisionLog&) = delete;
  DecisionLog& operator=(const DecisionLog&) = delete;

  bool ok() const { return file_ != nullptr; }
  size_t top_k() const { return top_k_; }
  int64_t records_written() const { return records_written_; }

  // Appends one record as a single JSON line.
  void Append(const DecisionTrace& trace);

  // The exact line format (without trailing newline); exposed so the golden
  // schema test pins it.
  static std::string Render(const DecisionTrace& trace);

 private:
  std::FILE* file_ = nullptr;
  size_t top_k_;
  int64_t records_written_ = 0;
};

}  // namespace optum::obs

#endif  // OPTUM_SRC_OBS_DECISION_LOG_H_
