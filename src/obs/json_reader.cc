#include "src/obs/json_reader.h"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace optum::obs {
namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  bool Parse(JsonValue* out) {
    SkipSpace();
    if (!ParseValue(out)) {
      return false;
    }
    SkipSpace();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after document");
    }
    return true;
  }

 private:
  bool Fail(const char* what) {
    if (error_ != nullptr) {
      *error_ = what;
      *error_ += " at byte " + std::to_string(pos_);
    }
    return false;
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  bool ParseValue(JsonValue* out) {
    if (pos_ >= text_.size()) {
      return Fail("unexpected end of input");
    }
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->string_value);
      case 't':
        if (!ConsumeLiteral("true")) {
          return Fail("bad literal");
        }
        out->kind = JsonValue::Kind::kBool;
        out->bool_value = true;
        return true;
      case 'f':
        if (!ConsumeLiteral("false")) {
          return Fail("bad literal");
        }
        out->kind = JsonValue::Kind::kBool;
        out->bool_value = false;
        return true;
      case 'n':
        if (!ConsumeLiteral("null")) {
          return Fail("bad literal");
        }
        out->kind = JsonValue::Kind::kNull;
        return true;
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue* out) {
    ++pos_;  // '{'
    out->kind = JsonValue::Kind::kObject;
    SkipSpace();
    if (Consume('}')) {
      return true;
    }
    while (true) {
      SkipSpace();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"' || !ParseString(&key)) {
        return Fail("expected object key");
      }
      SkipSpace();
      if (!Consume(':')) {
        return Fail("expected ':'");
      }
      SkipSpace();
      JsonValue value;
      if (!ParseValue(&value)) {
        return false;
      }
      out->members.emplace_back(std::move(key), std::move(value));
      SkipSpace();
      if (Consume('}')) {
        return true;
      }
      if (!Consume(',')) {
        return Fail("expected ',' or '}'");
      }
    }
  }

  bool ParseArray(JsonValue* out) {
    ++pos_;  // '['
    out->kind = JsonValue::Kind::kArray;
    SkipSpace();
    if (Consume(']')) {
      return true;
    }
    while (true) {
      SkipSpace();
      JsonValue value;
      if (!ParseValue(&value)) {
        return false;
      }
      out->items.push_back(std::move(value));
      SkipSpace();
      if (Consume(']')) {
        return true;
      }
      if (!Consume(',')) {
        return Fail("expected ',' or ']'");
      }
    }
  }

  bool ParseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return true;
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        break;
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out->push_back(esc);
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'u': {
          // Our writer only emits \u00XX for control bytes; decode the
          // low byte and ignore anything above Latin-1 (trusted input).
          if (pos_ + 4 > text_.size()) {
            return Fail("truncated \\u escape");
          }
          unsigned code = 0;
          const auto res = std::from_chars(text_.data() + pos_,
                                           text_.data() + pos_ + 4, code, 16);
          if (res.ec != std::errc() || res.ptr != text_.data() + pos_ + 4) {
            return Fail("bad \\u escape");
          }
          pos_ += 4;
          out->push_back(static_cast<char>(code & 0xff));
          break;
        }
        default:
          return Fail("bad escape");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(JsonValue* out) {
    const char* begin = text_.data() + pos_;
    const char* end = text_.data() + text_.size();
    double v = 0.0;
    const auto res = std::from_chars(begin, end, v);
    if (res.ec != std::errc() || res.ptr == begin) {
      return Fail("bad number");
    }
    pos_ = static_cast<size_t>(res.ptr - text_.data());
    out->kind = JsonValue::Kind::kNumber;
    out->number = v;
    return true;
  }

  std::string_view text_;
  std::string* error_;
  size_t pos_ = 0;
};

}  // namespace

bool ParseJson(std::string_view text, JsonValue* out, std::string* error) {
  *out = JsonValue();
  return Parser(text, error).Parse(out);
}

bool ReadWholeFile(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return false;
  }
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out->append(buf, n);
  }
  std::fclose(f);
  return true;
}

std::string ForEachJsonlRow(const std::string& path, const char* schema,
                            const std::function<void(const JsonValue&)>& row,
                            JsonlReadStats* stats) {
  std::string text;
  if (!ReadWholeFile(path, &text)) {
    return "cannot open " + path;
  }
  size_t start = 0;
  bool saw_header = false;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) {
      end = text.size();
    }
    std::string_view line(text.data() + start, end - start);
    start = end + 1;
    while (!line.empty() && line.back() == '\r') {
      line.remove_suffix(1);
    }
    if (line.empty()) {
      continue;
    }
    JsonValue doc;
    std::string error;
    if (!ParseJson(line, &doc, &error)) {
      return path + ": " + error;
    }
    if (!saw_header) {
      const JsonValue* tag = doc.Find("schema");
      if (tag == nullptr || !tag->is_string() || tag->string_value != schema) {
        return path + " is not an " + schema + " stream";
      }
      saw_header = true;
      continue;
    }
    if (stats != nullptr) {
      ++stats->data_rows;
    }
    row(doc);
  }
  if (!saw_header) {
    return path + " is empty";
  }
  return std::string();
}

}  // namespace optum::obs
