// Phase-level round profiler with critical-path and stall attribution
// (observability layer, DESIGN.md §14).
//
// A RoundProfiler answers "where does wall-clock time go inside one
// scheduling round?" for the pipelined serve loop and the simulator tick:
// each instrumented phase is timed by an RAII Scope into a lane-sharded
// fixed slot (one slot per shard, alignas(64), same discipline as the
// MetricRegistry shards and ScopedTimer — one branch and no clock read when
// detached), and the serial reduction path folds the per-round scratch into
// per-window accumulators via EndRound(). Every `window_rounds` rounds a
// window is flushed as bit-renderable optum.profile.v1 JSONL rows:
//
//   {"schema":"optum.profile.v1","clock":"ns"}             header
//   {"window":W,"rounds":R,"shards":S,"barrier_ns":B}      window summary
//   {"window":W,"shard":k,"phase":"spec_score",
//    "count":C,"total_ns":T,"max_ns":M}                    per-shard phase
//   {"window":W,"cp_shard":k,"cp_phase":"spec_score",
//    "rounds_bound":N,"bound_ns":B,"idle_ns":I}            critical path
//
// Determinism contract (pinned by tests/profiler_test): the *count* fields
// — window ids, rounds per window, shard ids, phase names, and per-phase
// counts — are bit-identical across pipeline_depth × shard_num_threads ×
// ingest on/off, exactly like placed-pod sets and latency rows. The ns
// fields (total_ns/max_ns/barrier_ns/idle_ns) and the critical-path
// *identity* (which shard/phase bounded a round) are wall-clock-derived and
// excluded, mirroring the serve_wall_s carve-out.
//
// Critical-path rule: only the phases that run inside the shard barrier
// (spec_score, finalize_revalidate) contribute to a lane's per-round busy
// time. The serial caller measures the barrier wall around Submit..Wait and
// passes it to EndRound(barrier_ns); the lane with the largest busy time is
// the round's bounding lane, its largest barrier phase the bounding phase,
// and every active lane is charged idle = barrier_ns - busy (its
// steal-wait / time-slice stall). With barrier_ns == 0 (simulator path,
// single lane) the max lane busy substitutes for the wall.
#ifndef OPTUM_SRC_OBS_PROFILER_H_
#define OPTUM_SRC_OBS_PROFILER_H_

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace optum::obs {

// Phases of one scheduling round / simulator tick. Order is the emission
// order inside a (window, shard) group and the tie-break order for
// critical-path attribution (lower enum wins).
enum class ProfilePhase : uint8_t {
  kIngestWait = 0,          // arrivals: ingest hand-off barrier or inline emit
  kSpecScore = 1,           // speculative top-up scoring (barrier phase)
  kFinalizeRevalidate = 2,  // settle the head pod: revalidate+finalize the
                            // staged speculation, or score fresh when none
                            // is staged — the only mode at depth 1
                            // (barrier phase)
  kResolve = 3,             // serial conflict resolution over shard proposals
  kCommit = 4,              // serial commit + counters + requeue + departures
  kPressureSweep = 5,       // pressure/SLO sweep + series sampling
  kIdle = 6,                // barrier_ns - busy, charged per active lane
};

inline constexpr size_t kNumProfilePhases = 7;

const char* ProfilePhaseName(ProfilePhase phase);

// True for phases that run inside the shard barrier and therefore count
// toward a lane's per-round busy time.
constexpr bool IsBarrierPhase(ProfilePhase phase) {
  return phase == ProfilePhase::kSpecScore ||
         phase == ProfilePhase::kFinalizeRevalidate;
}

// One flushed window's header row.
struct ProfileWindowRow {
  int64_t window = 0;
  int64_t rounds = 0;
  int64_t shards = 0;
  int64_t barrier_ns = 0;  // summed barrier wall over the window's rounds
};

// Per-(window, shard, phase) aggregate; emitted only when count > 0.
struct ProfilePhaseRow {
  int64_t window = 0;
  int64_t shard = 0;
  ProfilePhase phase = ProfilePhase::kIngestWait;
  int64_t count = 0;
  int64_t total_ns = 0;
  int64_t max_ns = 0;  // largest single scope duration in the window
};

// Per-(window, shard, phase) critical-path aggregate: how many rounds this
// (shard, phase) bounded the barrier, the barrier wall of those rounds, and
// the idle time the *other* active lanes spent waiting on it.
struct ProfileCriticalPathRow {
  int64_t window = 0;
  int64_t shard = 0;
  ProfilePhase phase = ProfilePhase::kSpecScore;
  int64_t rounds_bound = 0;
  int64_t bound_ns = 0;
  int64_t idle_ns = 0;
};

// JSONL sink for profile windows: one header line carrying the
// optum.profile.v1 schema tag, then window / phase / critical-path rows.
// Same buffered std::to_chars rendering and serial-path contract as
// HotspotLog; row kinds are distinguished by key presence ("cp_shard" →
// critical path, "shard" → phase, otherwise window summary).
class ProfileLog {
 public:
  explicit ProfileLog(const std::string& path);
  ~ProfileLog();

  ProfileLog(const ProfileLog&) = delete;
  ProfileLog& operator=(const ProfileLog&) = delete;

  bool ok() const { return file_ != nullptr; }
  int64_t rows_written() const { return rows_written_; }

  void Append(const ProfileWindowRow& row);
  void Append(const ProfilePhaseRow& row);
  void Append(const ProfileCriticalPathRow& row);
  void Flush();

  // Exact line formats (no trailing newline), pinned by the golden schema
  // test. Deterministic: integers via std::to_chars.
  static std::string Render(const ProfileWindowRow& row);
  static std::string Render(const ProfilePhaseRow& row);
  static std::string Render(const ProfileCriticalPathRow& row);
  static std::string RenderHeader();

 private:
  void AppendLine(const std::string& line);

  std::FILE* file_ = nullptr;
  std::string buffer_;
  int64_t rows_written_ = 0;
};

class RoundProfiler {
 public:
  struct Options {
    // EndRound() calls per flushed window.
    size_t window_rounds = 64;
  };

  RoundProfiler() : RoundProfiler(Options()) {}
  explicit RoundProfiler(Options options);

  RoundProfiler(const RoundProfiler&) = delete;
  RoundProfiler& operator=(const RoundProfiler&) = delete;

  // Optional JSONL sink for flushed windows; nullptr detaches. Attach
  // before the first round so window 0 is not dropped.
  void set_log(ProfileLog* log) { log_ = log; }

  // Grow-only, like MetricRegistry::set_num_lanes. Callable only while no
  // parallel recorders are running (attach time / between rounds).
  void set_num_lanes(size_t n);
  size_t num_lanes() const { return lanes_.size(); }

  // Hot path: fold one measured scope of `phase` into lane `lane`'s
  // current-round scratch. Parallel callers must each own a distinct lane
  // (the shard task writes lane == shard index); serial phases record into
  // lane 0. `lane` must be < num_lanes().
  void RecordNs(ProfilePhase phase, size_t lane, int64_t ns);

  // RAII phase scope mirroring ScopedTimer: with a null profiler the
  // constructor and destructor reduce to one branch each — no clock reads.
  class Scope {
   public:
    Scope(RoundProfiler* profiler, ProfilePhase phase, size_t lane)
        : profiler_(profiler), phase_(phase), lane_(lane) {
      if (profiler_ != nullptr) {
        start_ = std::chrono::steady_clock::now();
      }
    }

    ~Scope() {
      if (profiler_ != nullptr) {
        profiler_->RecordNs(
            phase_, lane_,
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - start_)
                .count());
      }
    }

    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    RoundProfiler* profiler_;
    ProfilePhase phase_;
    size_t lane_;
    std::chrono::steady_clock::time_point start_;
  };

  // Serial reduction path, after the barrier: merges every lane's round
  // scratch into the window accumulators, computes the round's critical
  // path and per-lane idle, and flushes a window every window_rounds
  // rounds. `barrier_ns` is the caller-measured wall of the parallel
  // section; 0 substitutes the max lane busy (single-lane callers).
  void EndRound(int64_t barrier_ns = 0);

  // Folds any trailing scratch (recorded after the last EndRound), flushes
  // the partial window if it holds anything, and flushes the log. Safe to
  // call more than once; later rounds keep working.
  void Finalize();

  // Collapsed-stack export for flamegraph tooling: one
  // "round;shard<k>;<phase> <total_ns>" line per (lane, phase) with
  // cumulative total_ns > 0, lane-major. Returns false if the file cannot
  // be opened.
  bool WriteCollapsed(const std::string& path) const;

  // Deterministic projection of everything flushed so far — window ids,
  // round counts, and per-(window, shard, phase) counts, ns fields
  // excluded. The determinism tests compare these strings across the
  // pipeline/thread/ingest matrix.
  const std::string& RenderCounts() const { return counts_projection_; }

  int64_t windows_flushed() const { return windows_flushed_; }
  int64_t rounds_profiled() const { return rounds_profiled_; }

  // Cumulative over all flushed windows, summed across lanes.
  int64_t total_ns(ProfilePhase phase) const;
  int64_t count(ProfilePhase phase) const;
  // Cumulative barrier wall over all flushed windows.
  int64_t barrier_ns_total() const { return barrier_ns_flushed_; }

 private:
  // One shard's slot. The round_* scratch is written by that shard's task
  // inside the barrier (and by the serial phases for lane 0); everything
  // else is touched only on the serial path while lanes are quiescent.
  // alignas(64) keeps parallel writers off each other's cache line.
  struct alignas(64) LaneSlot {
    // Current-round scratch, merged and reset by EndRound.
    int64_t round_ns[kNumProfilePhases] = {};
    int64_t round_count[kNumProfilePhases] = {};
    // Current-window accumulators, emitted and reset by FlushWindow.
    int64_t win_count[kNumProfilePhases] = {};
    int64_t win_total_ns[kNumProfilePhases] = {};
    int64_t win_max_ns[kNumProfilePhases] = {};
    // Current-window critical-path aggregates (serial path only).
    int64_t cp_rounds[kNumProfilePhases] = {};
    int64_t cp_bound_ns[kNumProfilePhases] = {};
    int64_t cp_idle_ns[kNumProfilePhases] = {};
    // Cumulative over flushed windows (WriteCollapsed / accessors).
    int64_t all_count[kNumProfilePhases] = {};
    int64_t all_total_ns[kNumProfilePhases] = {};
  };

  // Folds round scratch into window accumulators without closing a round
  // (no critical-path pass). Used by Finalize for trailing scopes.
  void MergeScratch();
  void FlushWindow();

  Options options_;
  std::vector<LaneSlot> lanes_;
  ProfileLog* log_ = nullptr;
  int64_t window_ = 0;         // id of the window being accumulated
  int64_t win_rounds_ = 0;     // EndRound calls in the current window
  int64_t win_barrier_ns_ = 0;
  int64_t windows_flushed_ = 0;
  int64_t rounds_profiled_ = 0;
  int64_t barrier_ns_flushed_ = 0;
  std::string counts_projection_;
};

}  // namespace optum::obs

#endif  // OPTUM_SRC_OBS_PROFILER_H_
