// Streaming per-host hotspot detection (observability layer, DESIGN.md §13).
//
// A HotspotDetector watches each host's smoothed pressure signal
// (src/obs/pressure.h) and turns threshold crossings into discrete hotspot
// *episodes* using hysteresis in both value and time:
//
//           p >= onset for min_onset_ticks          p < clear for
//   idle ──────────────────────────────────▶ hot ──────────────────▶ idle
//                                                  min_clear_ticks    │
//                                                                     ▼
//                                                          emit HotspotEvent
//
// The dual threshold (onset > clear) plus the dwell requirements make the
// detector chatter-free: a signal oscillating anywhere inside the
// [clear, onset) band never starts or ends an episode, and single-tick
// spikes or dips are ignored — the failure mode the Alibaba anomaly study
// (PAPERS.md, Ren et al.) shows dominates naive threshold alerting.
//
// Episodes are emitted on close (and on Finalize for still-open ones) as
// bit-deterministic optum.hotspot.v1 JSONL events carrying the host, onset
// tick, duration, peak pressure, and the resident pod-class mix at the peak.
// Observe runs on a serial path only (simulator tick loop / service round
// loop) in host-id order, so the byte stream is identical across thread and
// shard-thread counts — the same contract as SpanLog.
#ifndef OPTUM_SRC_OBS_HOTSPOT_H_
#define OPTUM_SRC_OBS_HOTSPOT_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "src/common/types.h"

namespace optum::obs {

struct HotspotConfig {
  // Episode starts after pressure >= onset_threshold for min_onset_ticks
  // consecutive ticks; it ends after pressure < clear_threshold for
  // min_clear_ticks consecutive ticks. Requires onset > clear (the
  // hysteresis band) and both dwells >= 1.
  //
  // The default onset sits just under demand == capacity: a well-packed
  // healthy cluster plateaus in the high-0.8s (BE-heavy hosts the Eq. 6
  // gate deliberately fills), so alerting there would page on the
  // scheduler's own steady state. Anomalous colocations blow through 1.0
  // because host demand is not capacity-clamped.
  double onset_threshold = 0.95;
  double clear_threshold = 0.80;
  Tick min_onset_ticks = 3;
  Tick min_clear_ticks = 3;
};

// One closed (or force-closed) hotspot episode.
struct HotspotEvent {
  HostId host = kInvalidHostId;
  Tick onset_tick = 0;  // first tick of the qualifying onset run
  Tick clear_tick = 0;  // first tick of the qualifying cool-down run;
                        // last observed tick + 1 when force-closed open
  double peak_pressure = 0.0;
  Tick peak_tick = 0;  // earliest tick attaining the peak
  // Resident schedulable pods at the peak tick.
  int32_t pods_be = 0;
  int32_t pods_ls = 0;
  int32_t pods_lsr = 0;
  bool open = false;  // true iff emitted by Finalize with the host still hot

  Tick duration_ticks() const { return clear_tick - onset_tick; }
};

// JSONL sink for hotspot events: one header line carrying the
// optum.hotspot.v1 schema tag, then one line per episode. Same buffered
// std::to_chars rendering and serial-path contract as SpanLog.
class HotspotLog {
 public:
  explicit HotspotLog(const std::string& path);
  ~HotspotLog();

  HotspotLog(const HotspotLog&) = delete;
  HotspotLog& operator=(const HotspotLog&) = delete;

  bool ok() const { return file_ != nullptr; }
  int64_t events_written() const { return events_written_; }

  void Append(const HotspotEvent& event);
  void Flush();

  // Exact line formats (no trailing newline), pinned by the golden schema
  // test. Deterministic: integers and shortest-round-trip doubles via
  // std::to_chars, tick timestamps only.
  static std::string Render(const HotspotEvent& event);
  static std::string RenderHeader();

 private:
  static void RenderTo(std::string* out, const HotspotEvent& event);

  std::FILE* file_ = nullptr;
  std::string buffer_;
  int64_t events_written_ = 0;
};

class HotspotDetector {
 public:
  HotspotDetector(size_t num_hosts, HotspotConfig config);

  // Optional JSONL sink; episodes also accumulate in events() either way.
  // nullptr detaches.
  void set_log(HotspotLog* log) { log_ = log; }

  // Feeds one host's smoothed pressure for `tick` along with its resident
  // schedulable pod counts. Serial path only; per host, ticks must be fed
  // in increasing order, and within a tick hosts in id order (what every
  // caller's host loop does) so emitted events are deterministically
  // ordered by (close time, host).
  void Observe(HostId host, Tick tick, double pressure, int32_t pods_be,
               int32_t pods_ls, int32_t pods_lsr);

  // Force-closes episodes still hot after the last observed tick
  // (clear_tick = last_tick + 1, open = true), in host-id order.
  void Finalize(Tick last_tick);

  // Closed + force-closed episodes, in emission order.
  const std::vector<HotspotEvent>& events() const { return events_; }
  int64_t events_emitted() const { return static_cast<int64_t>(events_.size()); }

  // Hosts currently in the hot state.
  int64_t hosts_hot() const { return hosts_hot_; }

  const HotspotConfig& config() const { return config_; }

 private:
  struct HostState {
    bool hot = false;
    Tick above = 0;  // consecutive ticks >= onset (pending-onset run)
    Tick below = 0;  // consecutive ticks < clear while hot
    Tick onset_tick = 0;
    double peak = 0.0;
    Tick peak_tick = 0;
    int32_t peak_be = 0;
    int32_t peak_ls = 0;
    int32_t peak_lsr = 0;
  };

  void Emit(HostId host, const HostState& state, Tick clear_tick, bool open);

  HotspotConfig config_;
  std::vector<HostState> states_;
  std::vector<HotspotEvent> events_;
  int64_t hosts_hot_ = 0;
  HotspotLog* log_ = nullptr;
};

}  // namespace optum::obs

#endif  // OPTUM_SRC_OBS_HOTSPOT_H_
