// Unified observability sink bundle (DESIGN.md §9/§11/§13).
//
// Every instrumented component used to grow its own ad-hoc attach surface —
// set_span_log here, AttachMetrics there, set_hotspot_log somewhere else —
// and callers had to know which component wanted which setter in which
// order. obs::Sinks collapses that into one value: a bundle of nullable
// sink pointers attached once per component via its AttachSinks() method.
// A component reads only the fields it understands and ignores the rest, so
// one Sinks value can be handed down a whole component tree (service →
// coordinator → shard schedulers) without the caller enumerating surfaces.
//
// Contract:
//   * All pointers are non-owning and nullable; nullptr means "detached".
//     The caller owns every sink and must keep it alive until the component
//     is destroyed or re-attached.
//   * AttachSinks() replaces the component's full sink set — fields left
//     nullptr detach that sink. To change one slot on an already-attached
//     component, copy its attached_sinks(), edit the field, and re-attach.
//   * Sinks never feed back into decisions: attaching any combination of
//     sinks must not change placements, rows, or any other output.
#ifndef OPTUM_SRC_OBS_SINKS_H_
#define OPTUM_SRC_OBS_SINKS_H_

namespace optum::obs {

class MetricRegistry;
class SpanLog;
class DecisionLog;
class HotspotLog;
class TimeSeriesRecorder;
class RoundProfiler;

struct Sinks {
  // Lane-sharded counters/gauges/histograms (DESIGN.md §9).
  MetricRegistry* metrics = nullptr;
  // Pod-lifecycle span log, optum.spans.v1 (DESIGN.md §11).
  SpanLog* span_log = nullptr;
  // Per-placement Eq. 11 decision log, JSONL (DESIGN.md §9).
  DecisionLog* decision_log = nullptr;
  // Hotspot-episode log, optum.hotspot.v1 (DESIGN.md §13).
  HotspotLog* hotspot_log = nullptr;
  // Streaming gauge time series, optum.series.v1 (DESIGN.md §11); requires
  // `metrics` on components that sample it.
  TimeSeriesRecorder* series = nullptr;
  // Phase-level round profiler, optum.profile.v1 (DESIGN.md §14).
  RoundProfiler* profile = nullptr;

  bool any() const {
    return metrics != nullptr || span_log != nullptr || decision_log != nullptr ||
           hotspot_log != nullptr || series != nullptr || profile != nullptr;
  }
};

}  // namespace optum::obs

#endif  // OPTUM_SRC_OBS_SINKS_H_
