// Minimal streaming JSON writer shared by every export path in the repo —
// the metrics registry dump, the per-placement decision log, and the
// machine-readable run summaries of runsim/trace_summary. Deliberately
// tiny: no DOM, no allocation beyond the output string, commas and nesting
// handled by a small state stack so callers cannot emit malformed JSON by
// forgetting separators.
//
// Numbers are formatted with %.10g (doubles) so output is deterministic
// for identical inputs; NaN and infinities — which JSON cannot represent —
// are emitted as null.
#ifndef OPTUM_SRC_OBS_JSON_WRITER_H_
#define OPTUM_SRC_OBS_JSON_WRITER_H_

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace optum::obs {

// Checked JSON-sink opener shared by every CLI export flag (--metrics-json,
// --decision-log, --span-log, --series-json, --json-out): opens `path` for
// writing (truncating) and reports failure once on stderr in one uniform
// format, so the tools don't each hand-roll the open/error dance.
inline std::FILE* OpenJsonSink(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
  }
  return f;
}

// Writes one complete JSON document (plus trailing newline) to `path`
// through OpenJsonSink. Returns false (with the error already reported) on
// open or short-write failure.
inline bool WriteJsonDocument(const std::string& path, std::string_view json) {
  std::FILE* f = OpenJsonSink(path);
  if (f == nullptr) {
    return false;
  }
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size() &&
                  std::fputc('\n', f) != EOF;
  std::fclose(f);
  if (!ok) {
    std::fprintf(stderr, "short write to %s\n", path.c_str());
  }
  return ok;
}

class JsonWriter {
 public:
  JsonWriter& BeginObject() {
    Separate();
    out_.push_back('{');
    stack_.push_back(State::kObjectFirst);
    return *this;
  }

  JsonWriter& EndObject() {
    stack_.pop_back();
    out_.push_back('}');
    return *this;
  }

  JsonWriter& BeginArray() {
    Separate();
    out_.push_back('[');
    stack_.push_back(State::kArrayFirst);
    return *this;
  }

  JsonWriter& EndArray() {
    stack_.pop_back();
    out_.push_back(']');
    return *this;
  }

  // Key of the next object member; must be followed by a value or a
  // Begin{Object,Array}.
  JsonWriter& Key(std::string_view name) {
    Separate();
    AppendQuoted(name);
    out_.push_back(':');
    pending_value_ = true;
    return *this;
  }

  JsonWriter& Value(std::string_view s) {
    Separate();
    AppendQuoted(s);
    return *this;
  }
  JsonWriter& Value(const char* s) { return Value(std::string_view(s)); }
  JsonWriter& Value(bool b) {
    Separate();
    out_ += b ? "true" : "false";
    return *this;
  }
  JsonWriter& Value(double v) {
    Separate();
    if (!std::isfinite(v)) {
      out_ += "null";
    } else {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.10g", v);
      out_ += buf;
    }
    return *this;
  }
  JsonWriter& Value(int64_t v) {
    Separate();
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& Value(uint64_t v) {
    Separate();
    out_ += std::to_string(v);
    return *this;
  }
  // size_t aliases uint64_t on the platforms we build for; an explicit
  // overload would be a redefinition.
  JsonWriter& Value(int v) { return Value(static_cast<int64_t>(v)); }
  JsonWriter& Value(unsigned v) { return Value(static_cast<uint64_t>(v)); }
  JsonWriter& Null() {
    Separate();
    out_ += "null";
    return *this;
  }

  // Splices an already-rendered JSON fragment in value position — how the
  // runsim summary embeds RenderSummaryJson output without re-parsing it.
  // The caller guarantees `json` is well-formed.
  JsonWriter& RawValue(std::string_view json) {
    Separate();
    out_ += json;
    return *this;
  }

  // Convenience: Key(...) followed by Value(...).
  template <typename T>
  JsonWriter& KV(std::string_view name, T&& value) {
    Key(name);
    return Value(std::forward<T>(value));
  }

  const std::string& str() const { return out_; }
  std::string TakeString() { return std::move(out_); }

  static std::string Escape(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
      switch (c) {
        case '"':
          out += "\\\"";
          break;
        case '\\':
          out += "\\\\";
          break;
        case '\n':
          out += "\\n";
          break;
        case '\r':
          out += "\\r";
          break;
        case '\t':
          out += "\\t";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
          } else {
            out.push_back(c);
          }
      }
    }
    return out;
  }

 private:
  enum class State : uint8_t { kObjectFirst, kObject, kArrayFirst, kArray };

  // Emits the separating comma when needed and advances the container
  // state. A value immediately after Key() never gets a comma.
  void Separate() {
    if (pending_value_) {
      pending_value_ = false;
      return;
    }
    if (stack_.empty()) {
      return;
    }
    State& top = stack_.back();
    if (top == State::kObjectFirst) {
      top = State::kObject;
    } else if (top == State::kArrayFirst) {
      top = State::kArray;
    } else {
      out_.push_back(',');
    }
  }

  void AppendQuoted(std::string_view s) {
    out_.push_back('"');
    out_ += Escape(s);
    out_.push_back('"');
  }

  std::string out_;
  std::vector<State> stack_;
  bool pending_value_ = false;
};

}  // namespace optum::obs

#endif  // OPTUM_SRC_OBS_JSON_WRITER_H_
