#include "src/obs/profiler.h"

#include <charconv>

#include "src/common/check.h"
#include "src/obs/json_writer.h"
#include "src/obs/schema.h"

namespace optum::obs {
namespace {

// Flush threshold, matching SpanLog/HotspotLog: amortizes fwrite without
// risking much of the stream on a crash.
constexpr size_t kFlushBytes = 64 * 1024;

void AppendInt(std::string* out, int64_t v) {
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out->append(buf, res.ptr);
}

constexpr const char* kPhaseNames[kNumProfilePhases] = {
    "ingest_wait", "spec_score",     "finalize_revalidate", "resolve",
    "commit",      "pressure_sweep", "idle",
};

}  // namespace

const char* ProfilePhaseName(ProfilePhase phase) {
  const size_t i = static_cast<size_t>(phase);
  OPTUM_CHECK_LT(i, kNumProfilePhases);
  return kPhaseNames[i];
}

ProfileLog::ProfileLog(const std::string& path) : file_(OpenJsonSink(path)) {
  buffer_.reserve(kFlushBytes + 512);
  if (file_ != nullptr) {
    buffer_ += RenderHeader();
    buffer_.push_back('\n');
  }
}

ProfileLog::~ProfileLog() {
  if (file_ != nullptr) {
    Flush();
    std::fclose(file_);
  }
}

std::string ProfileLog::RenderHeader() {
  std::string out = R"({"schema":")";
  out += kProfileSchema;
  out += R"(","clock":"ns"})";
  return out;
}

std::string ProfileLog::Render(const ProfileWindowRow& row) {
  std::string out = R"({"window":)";
  AppendInt(&out, row.window);
  out += R"(,"rounds":)";
  AppendInt(&out, row.rounds);
  out += R"(,"shards":)";
  AppendInt(&out, row.shards);
  out += R"(,"barrier_ns":)";
  AppendInt(&out, row.barrier_ns);
  out.push_back('}');
  return out;
}

std::string ProfileLog::Render(const ProfilePhaseRow& row) {
  std::string out = R"({"window":)";
  AppendInt(&out, row.window);
  out += R"(,"shard":)";
  AppendInt(&out, row.shard);
  out += R"(,"phase":")";
  out += ProfilePhaseName(row.phase);
  out += R"(","count":)";
  AppendInt(&out, row.count);
  out += R"(,"total_ns":)";
  AppendInt(&out, row.total_ns);
  out += R"(,"max_ns":)";
  AppendInt(&out, row.max_ns);
  out.push_back('}');
  return out;
}

std::string ProfileLog::Render(const ProfileCriticalPathRow& row) {
  std::string out = R"({"window":)";
  AppendInt(&out, row.window);
  out += R"(,"cp_shard":)";
  AppendInt(&out, row.shard);
  out += R"(,"cp_phase":")";
  out += ProfilePhaseName(row.phase);
  out += R"(","rounds_bound":)";
  AppendInt(&out, row.rounds_bound);
  out += R"(,"bound_ns":)";
  AppendInt(&out, row.bound_ns);
  out += R"(,"idle_ns":)";
  AppendInt(&out, row.idle_ns);
  out.push_back('}');
  return out;
}

void ProfileLog::AppendLine(const std::string& line) {
  if (file_ == nullptr) {
    return;
  }
  buffer_ += line;
  buffer_.push_back('\n');
  ++rows_written_;
  if (buffer_.size() >= kFlushBytes) {
    Flush();
  }
}

void ProfileLog::Append(const ProfileWindowRow& row) { AppendLine(Render(row)); }
void ProfileLog::Append(const ProfilePhaseRow& row) { AppendLine(Render(row)); }
void ProfileLog::Append(const ProfileCriticalPathRow& row) {
  AppendLine(Render(row));
}

void ProfileLog::Flush() {
  if (file_ == nullptr || buffer_.empty()) {
    return;
  }
  std::fwrite(buffer_.data(), 1, buffer_.size(), file_);
  std::fflush(file_);
  buffer_.clear();
}

RoundProfiler::RoundProfiler(Options options) : options_(options), lanes_(1) {
  OPTUM_CHECK_GE(options_.window_rounds, size_t{1});
}

void RoundProfiler::set_num_lanes(size_t n) {
  if (n > lanes_.size()) {
    lanes_.resize(n);
  }
}

void RoundProfiler::RecordNs(ProfilePhase phase, size_t lane, int64_t ns) {
  OPTUM_CHECK_LT(lane, lanes_.size());
  if (ns < 0) {
    ns = 0;  // steady_clock is monotonic, but never let a slew go negative
  }
  LaneSlot& slot = lanes_[lane];
  const size_t p = static_cast<size_t>(phase);
  slot.round_ns[p] += ns;
  slot.round_count[p] += 1;
  if (ns > slot.win_max_ns[p]) {
    slot.win_max_ns[p] = ns;
  }
}

void RoundProfiler::EndRound(int64_t barrier_ns) {
  // Pass 1: per-lane barrier busy, the round's bounding lane (largest busy,
  // ties to the lowest lane), and whether any lane was active this round.
  int64_t max_busy = 0;
  size_t bound_lane = lanes_.size();
  for (size_t i = 0; i < lanes_.size(); ++i) {
    const LaneSlot& slot = lanes_[i];
    int64_t busy = 0;
    int64_t records = 0;
    for (size_t p = 0; p < kNumProfilePhases; ++p) {
      if (IsBarrierPhase(static_cast<ProfilePhase>(p))) {
        busy += slot.round_ns[p];
        records += slot.round_count[p];
      }
    }
    if (records > 0 && (bound_lane == lanes_.size() || busy > max_busy)) {
      max_busy = busy;
      bound_lane = i;
    }
  }

  if (bound_lane != lanes_.size()) {
    // A measured barrier wall can only be >= the largest lane busy; clamp
    // up so idle never goes negative (and substitute it entirely when the
    // caller passed 0).
    if (barrier_ns < max_busy) {
      barrier_ns = max_busy;
    }
    win_barrier_ns_ += barrier_ns;

    // Bounding phase: the bounding lane's largest barrier phase, ties to
    // the lower enum value.
    const LaneSlot& bound_slot = lanes_[bound_lane];
    size_t bound_phase = static_cast<size_t>(ProfilePhase::kSpecScore);
    int64_t bound_phase_ns = -1;
    for (size_t p = 0; p < kNumProfilePhases; ++p) {
      if (IsBarrierPhase(static_cast<ProfilePhase>(p)) &&
          bound_slot.round_ns[p] > bound_phase_ns) {
        bound_phase_ns = bound_slot.round_ns[p];
        bound_phase = p;
      }
    }

    // Pass 2: charge idle = barrier - busy to every active lane, and the
    // other lanes' idle to the bounding (shard, phase).
    int64_t others_idle = 0;
    for (size_t i = 0; i < lanes_.size(); ++i) {
      LaneSlot& slot = lanes_[i];
      int64_t busy = 0;
      int64_t records = 0;
      for (size_t p = 0; p < kNumProfilePhases; ++p) {
        if (IsBarrierPhase(static_cast<ProfilePhase>(p))) {
          busy += slot.round_ns[p];
          records += slot.round_count[p];
        }
      }
      if (records == 0) {
        continue;  // lane idle-by-design this round, not a stall
      }
      int64_t idle = barrier_ns - busy;
      if (idle < 0) {
        idle = 0;
      }
      const size_t pi = static_cast<size_t>(ProfilePhase::kIdle);
      slot.win_count[pi] += 1;
      slot.win_total_ns[pi] += idle;
      if (idle > slot.win_max_ns[pi]) {
        slot.win_max_ns[pi] = idle;
      }
      if (i != bound_lane) {
        others_idle += idle;
      }
    }
    LaneSlot& bound_mut = lanes_[bound_lane];
    bound_mut.cp_rounds[bound_phase] += 1;
    bound_mut.cp_bound_ns[bound_phase] += barrier_ns;
    bound_mut.cp_idle_ns[bound_phase] += others_idle;
  }

  MergeScratch();
  ++win_rounds_;
  ++rounds_profiled_;
  if (win_rounds_ >= static_cast<int64_t>(options_.window_rounds)) {
    FlushWindow();
  }
}

void RoundProfiler::MergeScratch() {
  for (LaneSlot& slot : lanes_) {
    for (size_t p = 0; p < kNumProfilePhases; ++p) {
      slot.win_count[p] += slot.round_count[p];
      slot.win_total_ns[p] += slot.round_ns[p];
      slot.round_count[p] = 0;
      slot.round_ns[p] = 0;
    }
  }
}

void RoundProfiler::FlushWindow() {
  bool any = win_rounds_ > 0;
  for (const LaneSlot& slot : lanes_) {
    for (size_t p = 0; p < kNumProfilePhases && !any; ++p) {
      any = slot.win_count[p] > 0;
    }
  }
  if (!any) {
    return;
  }

  ProfileWindowRow window_row;
  window_row.window = window_;
  window_row.rounds = win_rounds_;
  window_row.shards = static_cast<int64_t>(lanes_.size());
  window_row.barrier_ns = win_barrier_ns_;
  if (log_ != nullptr) {
    log_->Append(window_row);
  }
  counts_projection_ += "window ";
  AppendInt(&counts_projection_, window_row.window);
  counts_projection_ += " rounds ";
  AppendInt(&counts_projection_, window_row.rounds);
  counts_projection_ += " shards ";
  AppendInt(&counts_projection_, window_row.shards);
  counts_projection_.push_back('\n');

  for (size_t i = 0; i < lanes_.size(); ++i) {
    LaneSlot& slot = lanes_[i];
    for (size_t p = 0; p < kNumProfilePhases; ++p) {
      if (slot.win_count[p] == 0) {
        continue;
      }
      ProfilePhaseRow row;
      row.window = window_;
      row.shard = static_cast<int64_t>(i);
      row.phase = static_cast<ProfilePhase>(p);
      row.count = slot.win_count[p];
      row.total_ns = slot.win_total_ns[p];
      row.max_ns = slot.win_max_ns[p];
      if (log_ != nullptr) {
        log_->Append(row);
      }
      counts_projection_ += "window ";
      AppendInt(&counts_projection_, row.window);
      counts_projection_ += " shard ";
      AppendInt(&counts_projection_, row.shard);
      counts_projection_ += " phase ";
      counts_projection_ += ProfilePhaseName(row.phase);
      counts_projection_ += " count ";
      AppendInt(&counts_projection_, row.count);
      counts_projection_.push_back('\n');

      slot.all_count[p] += slot.win_count[p];
      slot.all_total_ns[p] += slot.win_total_ns[p];
      slot.win_count[p] = 0;
      slot.win_total_ns[p] = 0;
      slot.win_max_ns[p] = 0;
    }
  }

  for (size_t i = 0; i < lanes_.size(); ++i) {
    LaneSlot& slot = lanes_[i];
    for (size_t p = 0; p < kNumProfilePhases; ++p) {
      if (slot.cp_rounds[p] == 0) {
        continue;
      }
      ProfileCriticalPathRow row;
      row.window = window_;
      row.shard = static_cast<int64_t>(i);
      row.phase = static_cast<ProfilePhase>(p);
      row.rounds_bound = slot.cp_rounds[p];
      row.bound_ns = slot.cp_bound_ns[p];
      row.idle_ns = slot.cp_idle_ns[p];
      if (log_ != nullptr) {
        log_->Append(row);
      }
      slot.cp_rounds[p] = 0;
      slot.cp_bound_ns[p] = 0;
      slot.cp_idle_ns[p] = 0;
    }
  }

  barrier_ns_flushed_ += win_barrier_ns_;
  win_barrier_ns_ = 0;
  win_rounds_ = 0;
  ++window_;
  ++windows_flushed_;
}

void RoundProfiler::Finalize() {
  MergeScratch();
  FlushWindow();
  if (log_ != nullptr) {
    log_->Flush();
  }
}

bool RoundProfiler::WriteCollapsed(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return false;
  }
  std::string out;
  for (size_t i = 0; i < lanes_.size(); ++i) {
    const LaneSlot& slot = lanes_[i];
    for (size_t p = 0; p < kNumProfilePhases; ++p) {
      if (slot.all_total_ns[p] <= 0) {
        continue;
      }
      out += "round;shard";
      AppendInt(&out, static_cast<int64_t>(i));
      out.push_back(';');
      out += kPhaseNames[p];
      out.push_back(' ');
      AppendInt(&out, slot.all_total_ns[p]);
      out.push_back('\n');
    }
  }
  const bool ok =
      std::fwrite(out.data(), 1, out.size(), file) == out.size();
  std::fclose(file);
  return ok;
}

int64_t RoundProfiler::total_ns(ProfilePhase phase) const {
  const size_t p = static_cast<size_t>(phase);
  int64_t total = 0;
  for (const LaneSlot& slot : lanes_) {
    total += slot.all_total_ns[p];
  }
  return total;
}

int64_t RoundProfiler::count(ProfilePhase phase) const {
  const size_t p = static_cast<size_t>(phase);
  int64_t total = 0;
  for (const LaneSlot& slot : lanes_) {
    total += slot.all_count[p];
  }
  return total;
}

}  // namespace optum::obs
