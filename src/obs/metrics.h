// Lightweight metrics registry for the scheduler/simulator hot paths
// (observability layer, DESIGN.md §9). Three metric kinds:
//
//   Counter   — monotonic uint64, lane-sharded, merged (summed) on read.
//   Gauge     — double with last-write-wins semantics across lanes (each
//               write is stamped with a global sequence number).
//   Histogram — fixed base-2 log-scale buckets plus count/sum/max,
//               lane-sharded, merged on read. Unit-agnostic; the scoped
//               timers feed it seconds.
//
// Sharding follows the PR 2 prediction-cache design: every metric owns one
// cache-line-aligned shard per thread-pool lane, updates name a lane and
// touch only that shard, and reads merge all shards. Concurrent updates are
// safe iff they use distinct lanes (the ParallelForLane contract); merged
// reads require quiescence (no in-flight updates), which every call site —
// per-tick sampling, final export — satisfies by construction.
//
// Instrumented code holds nullable pointers to metrics ("single branch on a
// nullable sink"): when no registry is attached the only cost is a
// well-predicted null check, so disabled instrumentation stays within the
// ≤2% hot-path overhead budget (bench_hotpath records the measured number).
//
// Metric updates never feed back into scheduling decisions, so attaching a
// registry cannot perturb placements: parallel PlaceScored stays
// bit-identical to serial with metrics on (tests/concurrency_test).
#ifndef OPTUM_SRC_OBS_METRICS_H_
#define OPTUM_SRC_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace optum::obs {

class MetricRegistry;

// Monotonic counter. Inc() on distinct lanes is contention-free.
class Counter {
 public:
  void Inc(size_t lane = 0, uint64_t n = 1) { shards_[lane].v += n; }

  // Merged total; call only while no lane is updating.
  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.v;
    }
    return total;
  }

  const std::string& name() const { return name_; }

 private:
  friend class MetricRegistry;
  struct alignas(64) Shard {
    uint64_t v = 0;
  };
  std::string name_;
  std::vector<Shard> shards_;
};

// Last-write-wins gauge. Each Set() stamps its shard with a global sequence
// number (relaxed fetch_add — gauges are off the per-candidate hot path),
// and Value() returns the most recently written shard.
class Gauge {
 public:
  void Set(double v, size_t lane = 0) {
    Shard& s = shards_[lane];
    s.v = v;
    s.seq = 1 + next_seq_.fetch_add(1, std::memory_order_relaxed);
  }

  // Merged read: the value with the highest write stamp (0.0 if never set).
  double Value() const {
    double v = 0.0;
    uint64_t best = 0;
    for (const Shard& s : shards_) {
      if (s.seq > best) {
        best = s.seq;
        v = s.v;
      }
    }
    return v;
  }

  bool ever_set() const {
    for (const Shard& s : shards_) {
      if (s.seq != 0) {
        return true;
      }
    }
    return false;
  }

  const std::string& name() const { return name_; }

 private:
  friend class MetricRegistry;
  struct alignas(64) Shard {
    double v = 0.0;
    uint64_t seq = 0;  // 0 = never written
  };
  std::string name_;
  std::vector<Shard> shards_;
  std::atomic<uint64_t> next_seq_{0};
};

// Fixed log-scale histogram: 64 base-2 buckets, bucket i covering
// [2^(i-30), 2^(i-29)), i.e. ~0.93 ns .. ~2^34 s when fed seconds. Values
// below the first bound clamp to bucket 0, above the last to bucket 63.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 64;
  static constexpr int kMinExponent = -30;  // lower bound of bucket 0 = 2^-30

  // Bucket index of a value (clamped; non-positive values land in 0).
  static size_t BucketIndex(double v);
  // Inclusive lower bound of bucket i: 2^(i + kMinExponent).
  static double BucketLowerBound(size_t i);

  void Record(double v, size_t lane = 0) {
    Shard& s = shards_[lane];
    ++s.buckets[BucketIndex(v)];
    ++s.count;
    s.sum += v;
    if (v > s.max) {
      s.max = v;
    }
  }

  // Merged reads; call only while no lane is updating.
  uint64_t Count() const;
  double Sum() const;
  double Max() const;
  double Mean() const { return Count() > 0 ? Sum() / static_cast<double>(Count()) : 0.0; }
  std::array<uint64_t, kNumBuckets> MergedBuckets() const;
  // Percentile estimate from the merged buckets (p in [0, 100]): linear
  // interpolation within the bucket that crosses the target rank.
  double Percentile(double p) const;

  const std::string& name() const { return name_; }

 private:
  friend class MetricRegistry;
  struct alignas(64) Shard {
    std::array<uint64_t, kNumBuckets> buckets{};
    uint64_t count = 0;
    double sum = 0.0;
    double max = 0.0;
  };
  std::string name_;
  std::vector<Shard> shards_;
};

// Owns all metrics of one run. Metric creation (counter()/gauge()/
// histogram()) is mutex-protected and idempotent — repeated lookups of the
// same name return the same stable pointer — while updates through the
// returned pointers are lock-free under the lane contract above.
class MetricRegistry {
 public:
  explicit MetricRegistry(size_t num_lanes = 1);

  // Grows every metric (existing and future) to `n` shards. Must be called
  // while no lane is updating — e.g. before handing the registry to a
  // scheduler with a thread pool. Grow-only, like the prediction caches.
  void set_num_lanes(size_t n);
  size_t num_lanes() const { return num_lanes_; }

  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name);

  // Pull-style metrics: collectors run right before each CollectGauges()
  // and each export, letting instrumented components publish internal
  // statistics (e.g. prediction-cache hit counts) as gauges without paying
  // per-event registry calls on the hot path.
  void AddCollector(std::function<void(MetricRegistry*)> fn);

  // Snapshots every gauge value in registration order after running the
  // collectors: appends names of gauges created since the last call to
  // `names` (so a caller-held column list stays aligned) and overwrites
  // `values` with one entry per name. Serial-context only (the streaming
  // TimeSeriesRecorder calls it once per sampled tick, after the parallel
  // phases). The per-tick history itself lives in obs/timeseries.h — the
  // registry deliberately holds no sample buffer, so registry memory is
  // independent of run length.
  void CollectGauges(std::vector<std::string>* names, std::vector<double>* values);

  // Full dump: schema header and merged counters/gauges/histograms. The
  // schema is pinned by tests/obs_test.
  std::string ToJson();
  bool WriteJsonFile(const std::string& path);

 private:
  void RunCollectors();

  mutable std::mutex mu_;  // guards metric creation and collector list
  size_t num_lanes_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::vector<Gauge*> gauge_order_;  // registration order, for series columns
  std::vector<std::function<void(MetricRegistry*)>> collectors_;
};

}  // namespace optum::obs

#endif  // OPTUM_SRC_OBS_METRICS_H_
