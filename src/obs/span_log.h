// Pod-lifecycle span tracing (observability layer, DESIGN.md §11).
//
// Every pod moving through the stack traces a Dapper-style span chain of
// phase transitions, each stamped with the monotonic simulation tick it
// happened on:
//
//   submitted → queued* → sampled → scored → placed
//                                          ↘ conflict-retried (distributed)
//   placed → finished | evicted
//
// The log is a JSONL stream: one header line carrying the optum.spans.v1
// schema tag, then one line per transition. Only deterministic fields are
// rendered (ticks, ids, counts, Eq. 11 scores) — never wall-clock readings —
// so the byte stream is bit-identical across OptumConfig::num_threads
// (tests/concurrency_test pins this). Wall-time phase latencies flow into
// MetricRegistry histograms instead, where nondeterminism is expected.
//
// Concurrency contract (same as DecisionLog): Append runs on a serial path
// only — the scheduler's serial reduction phase, the simulator tick loop, or
// the distributed coordinator's resolution phase. Distinct schedulers must
// use distinct logs. A null SpanLog* disables tracing at the cost of one
// branch per site.
//
// The hot path is PlaceScored emitting two small records per pod, so Append
// renders with std::to_chars into an owned buffer (no snprintf, no per-event
// heap traffic) and flushes in 64 KiB chunks; the measured overhead lives in
// BENCH_hotpath.json's observability[].spans section and must stay within
// the ≤2% metrics-on budget.
#ifndef OPTUM_SRC_OBS_SPAN_LOG_H_
#define OPTUM_SRC_OBS_SPAN_LOG_H_

#include <cstdint>
#include <cstdio>
#include <string>

#include "src/common/types.h"

namespace optum::obs {

class Counter;
class Histogram;
class MetricRegistry;

// One phase transition in a pod's lifecycle. Order matters: kSubmitted..
// kEvicted is the rendering/metric order used for the per-phase counters.
enum class SpanPhase : uint8_t {
  kSubmitted = 0,     // pod entered a pending queue
  kQueued,            // placement failed; pod re-queued with a reason
  kSampled,           // candidate hosts drawn (count = candidates)
  kScored,            // candidates scored (count = feasible, score = best)
  kPlaced,            // committed to `host` (wait_ticks = submit → now)
  kConflictRetried,   // lost distributed conflict resolution on `host`
  kFinished,          // completed on `host`
  kEvicted,           // killed on `host` (reason = OOM | Preempt)
};
inline constexpr int kNumSpanPhases = 8;

const char* ToString(SpanPhase phase);

struct SpanEvent {
  Tick tick = 0;                 // when the transition happened
  PodId pod = -1;
  SpanPhase phase = SpanPhase::kSubmitted;
  HostId host = kInvalidHostId;  // placed/conflict-retried/finished/evicted
  int64_t count = -1;            // sampled: candidates; scored: feasible
  Tick wait_ticks = -1;          // placed: ticks since submission
  bool has_score = false;        // scored: best feasible Eq. 11 score
  double score = 0.0;
  const char* reason = nullptr;  // queued: WaitReason; evicted: OOM|Preempt
};

class SpanLog {
 public:
  // Opens `path` for writing (truncating) through the shared checked JSON
  // sink and writes the schema header line. top-of-file header:
  //   {"schema":"optum.spans.v1","clock":"ticks"}
  explicit SpanLog(const std::string& path);
  ~SpanLog();

  SpanLog(const SpanLog&) = delete;
  SpanLog& operator=(const SpanLog&) = delete;

  bool ok() const { return file_ != nullptr; }
  int64_t records_written() const { return records_written_; }

  // Appends one transition as a single JSON line (serial path only). Also
  // feeds the attached per-phase metrics, when any.
  void Append(const SpanEvent& event);

  // Flushes the owned buffer to the file (called by the destructor; exposed
  // so exports can sync before reading the file back).
  void Flush();

  // The exact line format (without trailing newline); the golden schema
  // test pins it. Deterministic: integers and shortest-round-trip doubles
  // via std::to_chars, no locale, no wall-clock fields.
  static std::string Render(const SpanEvent& event);
  static std::string RenderHeader();

  // Publishes span metrics into `registry` under "spans." (nullptr
  // detaches): spans.<phase> event counters and the spans.queue_wait_seconds
  // histogram (submission → placement delay, the Fig. 8 waiting-time
  // distribution, recorded from kPlaced events' tick arithmetic — still
  // deterministic). `lane` is the registry shard all updates use.
  void AttachMetrics(MetricRegistry* registry, size_t lane = 0);

 private:
  static void RenderTo(std::string* out, const SpanEvent& event);

  std::FILE* file_ = nullptr;
  std::string buffer_;
  int64_t records_written_ = 0;

  // Nullable metric sinks (single branch when detached).
  size_t metrics_lane_ = 0;
  Counter* phase_counters_[kNumSpanPhases] = {};
  Histogram* queue_wait_seconds_ = nullptr;
};

}  // namespace optum::obs

#endif  // OPTUM_SRC_OBS_SPAN_LOG_H_
