// Streaming gauge time series (observability layer, DESIGN.md §11).
//
// The v1 metrics export buffered every per-tick gauge sample in memory and
// dumped them at the end of the run — O(run length) resident, which the
// ROADMAP flagged as broken for long simulations. This recorder replaces
// that buffer with the Monarch shape: a bounded ring of samples that is
// flushed incrementally to a JSONL sink whenever it fills, so resident
// memory is O(ring_capacity × gauges) no matter how many ticks the run
// lasts, while the on-disk file grows one line per sample.
//
// Output format (optum.series.v1): a header line
//   {"schema":"optum.series.v1","interval_ticks":N}
// followed by one line per sampled tick:
//   {"tick":T,"gauges":{"sim.cluster_cpu_util":0.42,...}}
// Gauge columns appear in registry registration order; gauges created
// mid-run simply start appearing in later lines (consumers key by name, not
// position — tools/series_plot handles late columns).
//
// Concurrency contract: Sample() runs in serial context only — the
// simulator calls it once per tick after the parallel phases, matching the
// quiescence requirement of merged gauge reads. The recorder never feeds
// back into scheduling, so attaching one cannot perturb placements.
#ifndef OPTUM_SRC_OBS_TIMESERIES_H_
#define OPTUM_SRC_OBS_TIMESERIES_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace optum::obs {

class MetricRegistry;

class TimeSeriesRecorder {
 public:
  static constexpr size_t kDefaultRingCapacity = 256;

  // Opens `path` through the shared checked JSON sink and writes the schema
  // header. `interval_ticks` is advisory metadata echoed in the header (how
  // often the caller intends to Sample); the recorder itself samples
  // whenever asked.
  TimeSeriesRecorder(MetricRegistry* registry, const std::string& path,
                     size_t ring_capacity = kDefaultRingCapacity,
                     int64_t interval_ticks = 1);
  ~TimeSeriesRecorder();

  TimeSeriesRecorder(const TimeSeriesRecorder&) = delete;
  TimeSeriesRecorder& operator=(const TimeSeriesRecorder&) = delete;

  bool ok() const { return file_ != nullptr; }
  size_t ring_capacity() const { return ring_capacity_; }
  // Samples currently resident in the ring (≤ ring_capacity; the
  // bounded-memory test watches this while samples_written grows).
  size_t buffered() const { return ring_.size(); }
  // Total samples flushed to the file so far (excludes the header line and
  // anything still resident in the ring).
  int64_t samples_written() const { return samples_written_; }

  // Snapshots every registry gauge under `tick` into the ring; flushes the
  // ring to the file when it reaches capacity. Serial context only.
  void Sample(int64_t tick);

  // Drains the ring to the file (destructor calls this; exposed so exports
  // can sync before the run summary reads the file back).
  void Flush();

  // The exact line format for one sample (without trailing newline), pinned
  // by the golden schema test. `names` and `values` are parallel arrays.
  static std::string RenderSample(int64_t tick,
                                  const std::vector<std::string>& names,
                                  const std::vector<double>& values);
  static std::string RenderHeader(int64_t interval_ticks);

 private:
  struct Row {
    int64_t tick = 0;
    // Parallel to names_ at sample time; rows taken before a gauge existed
    // are shorter and render only the columns that existed then.
    std::vector<double> values;
  };

  MetricRegistry* registry_;
  std::FILE* file_ = nullptr;
  size_t ring_capacity_;
  std::vector<std::string> names_;  // registry gauge columns, append-only
  std::vector<Row> ring_;
  std::vector<Row> spare_;  // recycled rows so steady state never allocates
  std::string render_buffer_;
  int64_t samples_written_ = 0;
};

}  // namespace optum::obs

#endif  // OPTUM_SRC_OBS_TIMESERIES_H_
