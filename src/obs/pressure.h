// Per-host pressure sensing (observability layer, DESIGN.md §13).
//
// The pressure signal is the sensor half of the C-Koordinator closed loop
// (PAPERS.md): a scalar per host per tick that rises when the host runs
// short of capacity or its latency-sensitive pods are predicted to suffer
// interference. Raw pressure combines
//
//   raw = max(cpu_util, mem_weight * mem_util)
//         + interference_weight * interference
//
// where cpu/mem utilization come from the caller's state (demand/capacity
// in the simulator, Eq. 6 predicted-usage/capacity in the placement
// service — request sums oversubscribe ~2.5x by design and would read as
// permanently saturated) and
// `interference` is the mean predicted RI per resident LS/LSR pod from the
// ERO-table-backed interference predictor (paper Eq. 9-10) — the caller
// supplies it because this layer links only optum_common. Raw pressure is
// EWMA-smoothed per host so single-tick spikes neither trip the hotspot
// detector nor charge SLO-violation time.
//
// HostPressureMonitor bundles the tracker with a HotspotDetector and
// sharded SloAccumulators behind a three-call-per-tick API
// (BeginTick / ObserveHost* / EndTick), publishes <prefix>.pressure.* and
// <prefix>.slo.* gauges (free TimeSeriesRecorder columns), and keeps every
// emission on the caller's serial path so all outputs are bit-identical
// across thread and shard-thread counts.
#ifndef OPTUM_SRC_OBS_PRESSURE_H_
#define OPTUM_SRC_OBS_PRESSURE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/types.h"
#include "src/obs/hotspot.h"
#include "src/obs/sinks.h"
#include "src/obs/slo.h"

namespace optum::obs {

class Gauge;
class MetricRegistry;

struct PressureConfig {
  // EWMA weight of the newest raw sample (1.0 = no smoothing).
  double ewma_alpha = 0.3;
  // Memory utilization counts this fraction of an equal CPU utilization
  // toward pressure (CPU is the contended resource in the trace, §3.1).
  double mem_weight = 0.7;
  // Scale of the predicted-interference term.
  double interference_weight = 0.5;
  // Smoothed pressure at or above this charges the host's resident pods
  // with SLO-violation ticks.
  double slo_threshold = 0.8;
};

// What a caller extracts from one host on one tick.
struct HostPressureInput {
  double cpu_util = 0.0;
  double mem_util = 0.0;
  // Mean predicted interference per resident LS/LSR pod (0 when none).
  double interference = 0.0;
  // Resident schedulable pods by class.
  int32_t pods_be = 0;
  int32_t pods_ls = 0;
  int32_t pods_lsr = 0;
};

struct PressureSignal {
  double raw = 0.0;
  double smoothed = 0.0;
};

// Raw (pre-smoothing) pressure of one input; exposed for tests.
double RawPressure(const PressureConfig& config, const HostPressureInput& input);

// Per-host EWMA state. Observe is serial-path-only; the first observation
// seeds the EWMA with the raw value.
class PressureTracker {
 public:
  PressureTracker(size_t num_hosts, PressureConfig config);

  // Returns the updated smoothed pressure.
  double Observe(HostId host, const HostPressureInput& input);

  const PressureSignal& signal(HostId host) const {
    return signals_[static_cast<size_t>(host)];
  }
  size_t num_hosts() const { return signals_.size(); }
  const PressureConfig& config() const { return config_; }

 private:
  PressureConfig config_;
  std::vector<PressureSignal> signals_;
  std::vector<uint8_t> seen_;
};

// Tracker + detector + sharded SLO accounting behind one per-tick API.
class HostPressureMonitor {
 public:
  struct Options {
    PressureConfig pressure;
    HotspotConfig hotspot;
    // SLO shard of a host is id % num_slo_shards; shards merge on export
    // (order-invariant). Callers typically match their own shard count so
    // per-shard accounting lines up with scheduler ownership.
    size_t num_slo_shards = 1;
    // Model-time length of one tick, for the rendered violation-seconds
    // (the simulator passes kSecondsPerTick; the serve layer passes
    // round_seconds — one round == one tick there).
    double seconds_per_tick = kSecondsPerTick;
  };

  HostPressureMonitor(size_t num_hosts, Options options);

  // Unified sink attach (obs::Sinks contract). Adopts sinks.metrics —
  // gauges under `<prefix>.pressure.*` / `<prefix>.slo.*` ("sim"/"serve"),
  // updated once per EndTick at lane 0, the caller's serial loop — and
  // sinks.hotspot_log (JSONL hotspot episodes). Other fields are ignored;
  // fields left nullptr detach.
  void AttachSinks(const Sinks& sinks, const std::string& prefix) {
    sinks_ = sinks;
    detector_.set_log(sinks.hotspot_log);
    WireMetrics(sinks.metrics, prefix);
  }

  // Per-tick protocol, all on the caller's serial path: BeginTick(t), then
  // ObserveHost for every host in id order, then EndTick. Ticks must be
  // strictly increasing.
  void BeginTick(Tick tick);
  void ObserveHost(HostId host, const HostPressureInput& input);
  void EndTick();

  // Force-closes open hotspot episodes after the last observed tick.
  void Finalize();

  const PressureTracker& tracker() const { return tracker_; }
  const HotspotDetector& detector() const { return detector_; }

  size_t num_slo_shards() const { return slo_shards_.size(); }
  const SloAccumulator& slo_shard(size_t shard) const {
    return slo_shards_[shard];
  }
  SloAccumulator MergedSlo() const;
  // Writes the merged optum.slo.v1 document.
  bool WriteSloJson(const std::string& path) const;

  double seconds_per_tick() const { return options_.seconds_per_tick; }
  const Options& options() const { return options_; }
  Tick last_tick() const { return tick_; }
  // Aggregates of the most recently completed tick.
  double last_mean_pressure() const { return last_mean_; }
  double last_max_pressure() const { return last_max_; }

 private:
  // Gauge wiring for AttachSinks.
  void WireMetrics(MetricRegistry* registry, const std::string& prefix);

  Options options_;
  PressureTracker tracker_;
  HotspotDetector detector_;
  std::vector<SloAccumulator> slo_shards_;
  Sinks sinks_;

  Tick tick_ = -1;
  bool in_tick_ = false;
  bool any_tick_ = false;
  double tick_sum_ = 0.0;
  double tick_max_ = 0.0;
  int64_t tick_hosts_ = 0;
  double last_mean_ = 0.0;
  double last_max_ = 0.0;

  // Nullable gauge sinks (single branch when detached).
  Gauge* g_mean_ = nullptr;
  Gauge* g_max_ = nullptr;
  Gauge* g_hot_hosts_ = nullptr;
  Gauge* g_hotspot_events_ = nullptr;
  Gauge* g_violation_seconds_[3] = {};  // BE, LS, LSR
  Gauge* g_observed_seconds_ = nullptr;
};

}  // namespace optum::obs

#endif  // OPTUM_SRC_OBS_PRESSURE_H_
