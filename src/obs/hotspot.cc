#include "src/obs/hotspot.h"

#include <charconv>

#include "src/common/check.h"
#include "src/obs/json_writer.h"
#include "src/obs/schema.h"

namespace optum::obs {
namespace {

// Flush threshold, matching SpanLog: amortizes fwrite without risking much
// of the stream on a crash.
constexpr size_t kFlushBytes = 64 * 1024;

void AppendInt(std::string* out, int64_t v) {
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out->append(buf, res.ptr);
}

// Shortest round-trip double via to_chars: deterministic and locale-free.
void AppendDouble(std::string* out, double v) {
  char buf[40];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out->append(buf, res.ptr);
}

}  // namespace

HotspotLog::HotspotLog(const std::string& path) : file_(OpenJsonSink(path)) {
  buffer_.reserve(kFlushBytes + 512);
  if (file_ != nullptr) {
    buffer_ += RenderHeader();
    buffer_.push_back('\n');
  }
}

HotspotLog::~HotspotLog() {
  if (file_ != nullptr) {
    Flush();
    std::fclose(file_);
  }
}

std::string HotspotLog::RenderHeader() {
  std::string out = R"({"schema":")";
  out += kHotspotSchema;
  out += R"(","clock":"ticks"})";
  return out;
}

void HotspotLog::RenderTo(std::string* out, const HotspotEvent& event) {
  out->append(R"({"host":)");
  AppendInt(out, event.host);
  out->append(R"(,"onset":)");
  AppendInt(out, event.onset_tick);
  out->append(R"(,"clear":)");
  AppendInt(out, event.clear_tick);
  out->append(R"(,"duration":)");
  AppendInt(out, event.duration_ticks());
  out->append(R"(,"peak_pressure":)");
  AppendDouble(out, event.peak_pressure);
  out->append(R"(,"peak_tick":)");
  AppendInt(out, event.peak_tick);
  out->append(R"(,"pods_be":)");
  AppendInt(out, event.pods_be);
  out->append(R"(,"pods_ls":)");
  AppendInt(out, event.pods_ls);
  out->append(R"(,"pods_lsr":)");
  AppendInt(out, event.pods_lsr);
  if (event.open) {
    out->append(R"(,"open":true)");
  }
  out->push_back('}');
}

std::string HotspotLog::Render(const HotspotEvent& event) {
  std::string out;
  RenderTo(&out, event);
  return out;
}

void HotspotLog::Append(const HotspotEvent& event) {
  if (file_ == nullptr) {
    return;
  }
  RenderTo(&buffer_, event);
  buffer_.push_back('\n');
  ++events_written_;
  if (buffer_.size() >= kFlushBytes) {
    Flush();
  }
}

void HotspotLog::Flush() {
  if (file_ == nullptr || buffer_.empty()) {
    return;
  }
  std::fwrite(buffer_.data(), 1, buffer_.size(), file_);
  std::fflush(file_);
  buffer_.clear();
}

HotspotDetector::HotspotDetector(size_t num_hosts, HotspotConfig config)
    : config_(config), states_(num_hosts) {
  OPTUM_CHECK_MSG(config_.onset_threshold > config_.clear_threshold,
                  "HotspotConfig: onset must exceed clear (hysteresis band)");
  OPTUM_CHECK_GE(config_.min_onset_ticks, 1);
  OPTUM_CHECK_GE(config_.min_clear_ticks, 1);
}

void HotspotDetector::Emit(HostId host, const HostState& state, Tick clear_tick,
                           bool open) {
  HotspotEvent event;
  event.host = host;
  event.onset_tick = state.onset_tick;
  event.clear_tick = clear_tick;
  event.peak_pressure = state.peak;
  event.peak_tick = state.peak_tick;
  event.pods_be = state.peak_be;
  event.pods_ls = state.peak_ls;
  event.pods_lsr = state.peak_lsr;
  event.open = open;
  events_.push_back(event);
  if (log_ != nullptr) {
    log_->Append(event);
  }
}

void HotspotDetector::Observe(HostId host, Tick tick, double pressure,
                              int32_t pods_be, int32_t pods_ls,
                              int32_t pods_lsr) {
  HostState& s = states_[static_cast<size_t>(host)];
  if (!s.hot) {
    if (pressure >= config_.onset_threshold) {
      if (s.above == 0 || pressure > s.peak) {
        if (s.above == 0) {
          s.onset_tick = tick;
        }
        s.peak = pressure;
        s.peak_tick = tick;
        s.peak_be = pods_be;
        s.peak_ls = pods_ls;
        s.peak_lsr = pods_lsr;
      }
      ++s.above;
      if (s.above >= config_.min_onset_ticks) {
        s.hot = true;
        s.below = 0;
        ++hosts_hot_;
      }
    } else {
      s.above = 0;
    }
    return;
  }
  // Hot: track the peak, wait for a qualifying cool-down run.
  if (pressure > s.peak) {
    s.peak = pressure;
    s.peak_tick = tick;
    s.peak_be = pods_be;
    s.peak_ls = pods_ls;
    s.peak_lsr = pods_lsr;
  }
  if (pressure < config_.clear_threshold) {
    ++s.below;
    if (s.below >= config_.min_clear_ticks) {
      Emit(host, s, /*clear_tick=*/tick - (config_.min_clear_ticks - 1),
           /*open=*/false);
      s = HostState{};
      --hosts_hot_;
    }
  } else {
    s.below = 0;
  }
}

void HotspotDetector::Finalize(Tick last_tick) {
  for (size_t h = 0; h < states_.size(); ++h) {
    HostState& s = states_[h];
    if (s.hot) {
      Emit(static_cast<HostId>(h), s, /*clear_tick=*/last_tick + 1,
           /*open=*/true);
      s = HostState{};
      --hosts_hot_;
    }
  }
}

}  // namespace optum::obs
