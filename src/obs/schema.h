// Single source of truth for the JSON schema tags stamped on every exported
// document (the "schema" key consumers dispatch on). Tools, exporters, and
// golden tests all read these constants; bump a version here — and only
// here — when a document's shape changes.
#ifndef OPTUM_SRC_OBS_SCHEMA_H_
#define OPTUM_SRC_OBS_SCHEMA_H_

namespace optum::obs {

// MetricRegistry::ToJson — counters/gauges/histograms
// (`runsim --metrics-json` writes this document). v2 dropped the embedded
// per-tick gauge series: time series now stream through the JSONL
// optum.series.v1 sink (`runsim --series-json`) so memory stays bounded on
// long runs.
inline constexpr const char* kMetricsSchema = "optum.metrics.v2";

// `runsim --json` — one simulation run: config echo, headline results, and
// an embedded optum.summary.v1 under "summary".
inline constexpr const char* kRunsimSchema = "optum.runsim.v1";

// RenderSummaryJson — per-class trace summary
// (`trace_summary --json` and the "summary" object of optum.runsim.v1).
inline constexpr const char* kSummarySchema = "optum.summary.v1";

// SpanLog — JSONL pod-lifecycle span stream (`runsim --span-log`): header
// line carrying this tag, then one line per phase transition.
inline constexpr const char* kSpansSchema = "optum.spans.v1";

// TimeSeriesRecorder — JSONL streaming gauge time series
// (`runsim --series-json`): header line carrying this tag, then one line
// per sampled tick.
inline constexpr const char* kSeriesSchema = "optum.series.v1";

// serve::RenderLatencyRow — JSONL placement-latency percentile rows from
// the open-loop placement service (`serve_bench`, bench_hotpath --serve-only):
// header line carrying this tag, then one row per service configuration.
inline constexpr const char* kLatencySchema = "optum.latency.v1";

// HotspotLog — JSONL hotspot-episode stream from the HotspotDetector
// (`serve_bench --hotspot-log`, `runsim --hotspot-log`): header line
// carrying this tag, then one line per closed episode.
inline constexpr const char* kHotspotSchema = "optum.hotspot.v1";

// SloAccumulator::RenderJson — per-class SLO-violation-seconds document
// (`serve_bench --slo-json`, `runsim --slo-json`), merged across shards.
inline constexpr const char* kSloSchema = "optum.slo.v1";

// ProfileLog — JSONL phase-profile stream from the RoundProfiler
// (`serve_bench --profile-json`, `runsim --profile-json`): header line
// carrying this tag, then per-window summary / per-shard phase /
// critical-path rows (DESIGN.md §14).
inline constexpr const char* kProfileSchema = "optum.profile.v1";

struct SchemaInfo {
  const char* tag;
  const char* producer;
};

// Every schema this repo emits, for tooling that enumerates or validates
// exported documents.
inline constexpr SchemaInfo kSchemas[] = {
    {kMetricsSchema, "MetricRegistry::ToJson / runsim --metrics-json"},
    {kRunsimSchema, "runsim --json"},
    {kSummarySchema, "RenderSummaryJson / trace_summary --json"},
    {kSpansSchema, "SpanLog / runsim --span-log"},
    {kSeriesSchema, "TimeSeriesRecorder / runsim --series-json"},
    {kLatencySchema, "serve::RenderLatencyRow / serve_bench"},
    {kHotspotSchema, "HotspotLog / serve_bench --hotspot-log"},
    {kSloSchema, "SloAccumulator::RenderJson / serve_bench --slo-json"},
    {kProfileSchema, "ProfileLog / serve_bench --profile-json"},
};

}  // namespace optum::obs

#endif  // OPTUM_SRC_OBS_SCHEMA_H_
