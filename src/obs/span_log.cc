#include "src/obs/span_log.h"

#include <charconv>
#include <string_view>

#include "src/obs/json_writer.h"
#include "src/obs/metrics.h"
#include "src/obs/schema.h"

namespace optum::obs {
namespace {

// Flush threshold for the owned buffer. Large enough that fwrite cost is
// amortized over thousands of records, small enough that a crashed run still
// leaves most of the stream on disk.
constexpr size_t kFlushBytes = 64 * 1024;

void AppendInt(std::string* out, int64_t v) {
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out->append(buf, res.ptr);
}

// Shortest round-trip double (to_chars without a precision argument).
// Deterministic and locale-free, unlike printf.
void AppendDouble(std::string* out, double v) {
  char buf[40];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out->append(buf, res.ptr);
}

}  // namespace

const char* ToString(SpanPhase phase) {
  switch (phase) {
    case SpanPhase::kSubmitted:
      return "submitted";
    case SpanPhase::kQueued:
      return "queued";
    case SpanPhase::kSampled:
      return "sampled";
    case SpanPhase::kScored:
      return "scored";
    case SpanPhase::kPlaced:
      return "placed";
    case SpanPhase::kConflictRetried:
      return "conflict_retried";
    case SpanPhase::kFinished:
      return "finished";
    case SpanPhase::kEvicted:
      return "evicted";
  }
  return "unknown";
}

SpanLog::SpanLog(const std::string& path) : file_(OpenJsonSink(path)) {
  buffer_.reserve(kFlushBytes + 512);
  if (file_ != nullptr) {
    buffer_ += RenderHeader();
    buffer_.push_back('\n');
  }
}

SpanLog::~SpanLog() {
  if (file_ != nullptr) {
    Flush();
    std::fclose(file_);
  }
}

std::string SpanLog::RenderHeader() {
  std::string out = R"({"schema":")";
  out += kSpansSchema;
  out += R"(","clock":"ticks"})";
  return out;
}

void SpanLog::RenderTo(std::string* out, const SpanEvent& event) {
  out->append(R"({"tick":)");
  AppendInt(out, event.tick);
  out->append(R"(,"pod":)");
  AppendInt(out, event.pod);
  out->append(R"(,"phase":")");
  out->append(ToString(event.phase));
  out->push_back('"');
  if (event.host != kInvalidHostId) {
    out->append(R"(,"host":)");
    AppendInt(out, event.host);
  }
  if (event.count >= 0) {
    out->append(R"(,"count":)");
    AppendInt(out, event.count);
  }
  if (event.wait_ticks >= 0) {
    out->append(R"(,"wait":)");
    AppendInt(out, event.wait_ticks);
  }
  if (event.has_score) {
    out->append(R"(,"score":)");
    AppendDouble(out, event.score);
  }
  if (event.reason != nullptr) {
    out->append(R"(,"reason":")");
    // Reasons are fixed identifiers (WaitReason names, "OOM", "Preempt");
    // none need escaping, and keeping this branch-free keeps Append cheap.
    out->append(event.reason);
    out->push_back('"');
  }
  out->push_back('}');
}

std::string SpanLog::Render(const SpanEvent& event) {
  std::string out;
  RenderTo(&out, event);
  return out;
}

void SpanLog::Append(const SpanEvent& event) {
  const size_t phase_index = static_cast<size_t>(event.phase);
  if (phase_counters_[phase_index] != nullptr) {
    phase_counters_[phase_index]->Inc(metrics_lane_);
    if (event.phase == SpanPhase::kPlaced && event.wait_ticks >= 0 &&
        queue_wait_seconds_ != nullptr) {
      queue_wait_seconds_->Record(
          static_cast<double>(event.wait_ticks) * kSecondsPerTick,
          metrics_lane_);
    }
  }
  if (file_ == nullptr) {
    return;
  }
  RenderTo(&buffer_, event);
  buffer_.push_back('\n');
  ++records_written_;
  if (buffer_.size() >= kFlushBytes) {
    Flush();
  }
}

void SpanLog::Flush() {
  if (file_ == nullptr || buffer_.empty()) {
    return;
  }
  std::fwrite(buffer_.data(), 1, buffer_.size(), file_);
  std::fflush(file_);
  buffer_.clear();
}

void SpanLog::AttachMetrics(MetricRegistry* registry, size_t lane) {
  if (registry == nullptr) {
    metrics_lane_ = 0;
    for (Counter*& c : phase_counters_) {
      c = nullptr;
    }
    queue_wait_seconds_ = nullptr;
    return;
  }
  metrics_lane_ = lane;
  for (int i = 0; i < kNumSpanPhases; ++i) {
    phase_counters_[i] = registry->counter(
        std::string("spans.") + ToString(static_cast<SpanPhase>(i)));
  }
  queue_wait_seconds_ = registry->histogram("spans.queue_wait_seconds");
}

}  // namespace optum::obs
