#include "src/obs/timeseries.h"

#include <utility>

#include "src/common/check.h"
#include "src/obs/json_writer.h"
#include "src/obs/metrics.h"
#include "src/obs/schema.h"

namespace optum::obs {

TimeSeriesRecorder::TimeSeriesRecorder(MetricRegistry* registry,
                                       const std::string& path,
                                       size_t ring_capacity,
                                       int64_t interval_ticks)
    : registry_(registry),
      file_(OpenJsonSink(path)),
      ring_capacity_(ring_capacity) {
  OPTUM_CHECK(registry_ != nullptr);
  OPTUM_CHECK_GE(ring_capacity_, 1u);
  ring_.reserve(ring_capacity_);
  spare_.reserve(ring_capacity_);
  if (file_ != nullptr) {
    const std::string header = RenderHeader(interval_ticks);
    std::fwrite(header.data(), 1, header.size(), file_);
    std::fputc('\n', file_);
  }
}

TimeSeriesRecorder::~TimeSeriesRecorder() {
  if (file_ != nullptr) {
    Flush();
    std::fclose(file_);
  }
}

std::string TimeSeriesRecorder::RenderHeader(int64_t interval_ticks) {
  JsonWriter w;
  w.BeginObject();
  w.KV("schema", kSeriesSchema);
  w.KV("interval_ticks", interval_ticks);
  w.EndObject();
  return w.TakeString();
}

std::string TimeSeriesRecorder::RenderSample(
    int64_t tick, const std::vector<std::string>& names,
    const std::vector<double>& values) {
  JsonWriter w;
  w.BeginObject();
  w.KV("tick", tick);
  w.Key("gauges").BeginObject();
  const size_t n = values.size() < names.size() ? values.size() : names.size();
  for (size_t i = 0; i < n; ++i) {
    w.KV(names[i], values[i]);
  }
  w.EndObject();
  w.EndObject();
  return w.TakeString();
}

void TimeSeriesRecorder::Sample(int64_t tick) {
  Row row;
  if (!spare_.empty()) {
    row = std::move(spare_.back());
    spare_.pop_back();
  }
  row.tick = tick;
  registry_->CollectGauges(&names_, &row.values);
  ring_.push_back(std::move(row));
  if (ring_.size() >= ring_capacity_) {
    Flush();
  }
}

void TimeSeriesRecorder::Flush() {
  if (ring_.empty()) {
    return;
  }
  if (file_ != nullptr) {
    render_buffer_.clear();
    for (const Row& row : ring_) {
      render_buffer_ += RenderSample(row.tick, names_, row.values);
      render_buffer_.push_back('\n');
    }
    std::fwrite(render_buffer_.data(), 1, render_buffer_.size(), file_);
    std::fflush(file_);
  }
  samples_written_ += static_cast<int64_t>(ring_.size());
  // Recycle the row storage so the steady state re-uses the same vectors
  // instead of re-allocating one per sample.
  for (Row& row : ring_) {
    row.values.clear();
    spare_.push_back(std::move(row));
  }
  ring_.clear();
}

}  // namespace optum::obs
