// RAII timer feeding a Histogram with elapsed seconds. With a null sink the
// constructor and destructor reduce to one branch each — no clock reads —
// so always-present instrumentation costs nothing when metrics are off.
#ifndef OPTUM_SRC_OBS_TIMER_H_
#define OPTUM_SRC_OBS_TIMER_H_

#include <chrono>

#include "src/obs/metrics.h"

namespace optum::obs {

class ScopedTimer {
 public:
  // Records into `sink` shard `lane` on destruction; nullptr disables.
  explicit ScopedTimer(Histogram* sink, size_t lane = 0)
      : sink_(sink), lane_(lane) {
    if (sink_ != nullptr) {
      start_ = std::chrono::steady_clock::now();
    }
  }

  ~ScopedTimer() {
    if (sink_ != nullptr) {
      sink_->Record(
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
              .count(),
          lane_);
    }
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* sink_;
  size_t lane_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace optum::obs

#endif  // OPTUM_SRC_OBS_TIMER_H_
