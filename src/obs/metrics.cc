#include "src/obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/common/check.h"
#include "src/obs/json_writer.h"
#include "src/obs/schema.h"

namespace optum::obs {

size_t Histogram::BucketIndex(double v) {
  if (!(v > 0.0)) {
    return 0;  // non-positive (and NaN) values clamp to the first bucket
  }
  int exp = 0;
  // v = m * 2^exp with m in [0.5, 1), so floor(log2(v)) == exp - 1.
  (void)std::frexp(v, &exp);
  const int bucket = (exp - 1) - kMinExponent;
  if (bucket < 0) {
    return 0;
  }
  if (bucket >= static_cast<int>(kNumBuckets)) {
    return kNumBuckets - 1;
  }
  return static_cast<size_t>(bucket);
}

double Histogram::BucketLowerBound(size_t i) {
  return std::ldexp(1.0, static_cast<int>(i) + kMinExponent);
}

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  for (const Shard& s : shards_) {
    total += s.count;
  }
  return total;
}

double Histogram::Sum() const {
  double total = 0.0;
  for (const Shard& s : shards_) {
    total += s.sum;
  }
  return total;
}

double Histogram::Max() const {
  double m = 0.0;
  for (const Shard& s : shards_) {
    if (s.max > m) {
      m = s.max;
    }
  }
  return m;
}

std::array<uint64_t, Histogram::kNumBuckets> Histogram::MergedBuckets() const {
  std::array<uint64_t, kNumBuckets> merged{};
  for (const Shard& s : shards_) {
    for (size_t i = 0; i < kNumBuckets; ++i) {
      merged[i] += s.buckets[i];
    }
  }
  return merged;
}

double Histogram::Percentile(double p) const {
  const std::array<uint64_t, kNumBuckets> merged = MergedBuckets();
  const uint64_t total = Count();
  if (total == 0) {
    return 0.0;
  }
  const double rank = std::clamp(p, 0.0, 100.0) / 100.0 * static_cast<double>(total);
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    if (merged[i] == 0) {
      continue;
    }
    if (static_cast<double>(seen + merged[i]) >= rank) {
      const double lo = BucketLowerBound(i);
      const double hi = BucketLowerBound(i + 1);
      const double within =
          (rank - static_cast<double>(seen)) / static_cast<double>(merged[i]);
      return lo + (hi - lo) * std::clamp(within, 0.0, 1.0);
    }
    seen += merged[i];
  }
  return Max();
}

MetricRegistry::MetricRegistry(size_t num_lanes) : num_lanes_(num_lanes) {
  OPTUM_CHECK_GE(num_lanes, 1u);
}

void MetricRegistry::set_num_lanes(size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  if (n <= num_lanes_) {
    return;
  }
  num_lanes_ = n;
  for (auto& [name, c] : counters_) {
    c->shards_.resize(n);
  }
  for (auto& [name, g] : gauges_) {
    g->shards_.resize(n);
  }
  for (auto& [name, h] : histograms_) {
    h->shards_.resize(n);
  }
}

Counter* MetricRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
    slot->name_ = name;
    slot->shards_.resize(num_lanes_);
  }
  return slot.get();
}

Gauge* MetricRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>();
    slot->name_ = name;
    slot->shards_.resize(num_lanes_);
    gauge_order_.push_back(slot.get());
  }
  return slot.get();
}

Histogram* MetricRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>();
    slot->name_ = name;
    slot->shards_.resize(num_lanes_);
  }
  return slot.get();
}

void MetricRegistry::AddCollector(std::function<void(MetricRegistry*)> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  collectors_.push_back(std::move(fn));
}

void MetricRegistry::RunCollectors() {
  // Copy under the lock so a collector may itself create metrics.
  std::vector<std::function<void(MetricRegistry*)>> fns;
  {
    std::lock_guard<std::mutex> lock(mu_);
    fns = collectors_;
  }
  for (const auto& fn : fns) {
    fn(this);
  }
}

void MetricRegistry::CollectGauges(std::vector<std::string>* names,
                                   std::vector<double>* values) {
  RunCollectors();
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = names->size(); i < gauge_order_.size(); ++i) {
    names->push_back(gauge_order_[i]->name());
  }
  values->clear();
  values->reserve(gauge_order_.size());
  for (const Gauge* g : gauge_order_) {
    values->push_back(g->Value());
  }
}

std::string MetricRegistry::ToJson() {
  RunCollectors();
  std::lock_guard<std::mutex> lock(mu_);
  JsonWriter w;
  w.BeginObject();
  w.KV("schema", kMetricsSchema);

  w.Key("counters").BeginObject();
  for (const auto& [name, c] : counters_) {
    w.KV(name, c->Value());
  }
  w.EndObject();

  w.Key("gauges").BeginObject();
  for (const auto& [name, g] : gauges_) {
    w.KV(name, g->Value());
  }
  w.EndObject();

  w.Key("histograms").BeginObject();
  for (const auto& [name, h] : histograms_) {
    w.Key(name).BeginObject();
    w.KV("count", h->Count());
    w.KV("sum", h->Sum());
    w.KV("mean", h->Mean());
    w.KV("max", h->Max());
    w.KV("p50", h->Percentile(50));
    w.KV("p90", h->Percentile(90));
    w.KV("p99", h->Percentile(99));
    // Sparse bucket dump: [lower_bound, count] for non-empty buckets only.
    w.Key("buckets").BeginArray();
    const auto merged = h->MergedBuckets();
    for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      if (merged[i] == 0) {
        continue;
      }
      w.BeginArray();
      w.Value(Histogram::BucketLowerBound(i));
      w.Value(merged[i]);
      w.EndArray();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndObject();

  w.EndObject();
  return w.TakeString();
}

bool MetricRegistry::WriteJsonFile(const std::string& path) {
  return WriteJsonDocument(path, ToJson());
}

}  // namespace optum::obs
