// Per-class SLO-violation accounting (observability layer, DESIGN.md §13).
//
// An SloAccumulator tallies, per SLO class, how many pod-ticks were observed
// and how many of them were spent on a host whose smoothed pressure signal
// exceeded the violation threshold (src/obs/pressure.h decides "violated";
// this module only counts). Counts are plain int64 tick totals, so the merge
// is commutative/associative integer addition — the same contract as the
// serve layer's LatencyHistogram: shard accumulators merge in any order and
// the result (and its rendered optum.slo.v1 document) is bit-identical.
// Seconds are derived at render time (ticks * seconds_per_tick), never
// stored, so accumulation stays exact.
//
// Concurrency contract: Observe runs on a serial path only (the simulator
// tick loop or the placement service's round loop). Shard-parallel callers
// keep one accumulator per shard and merge on export.
#ifndef OPTUM_SRC_OBS_SLO_H_
#define OPTUM_SRC_OBS_SLO_H_

#include <cstdint>
#include <string>

#include "src/common/types.h"

namespace optum::obs {

class SloAccumulator {
 public:
  // Accounts `pod_ticks` observed pod-ticks of class `slo`, all of them
  // violated or all compliant (callers observe one host-tick at a time, so
  // the host's violation state applies to every resident pod uniformly).
  void Observe(SloClass slo, int64_t pod_ticks, bool violated);

  int64_t observed_ticks(SloClass slo) const {
    return observed_[static_cast<size_t>(slo)];
  }
  int64_t violation_ticks(SloClass slo) const {
    return violation_[static_cast<size_t>(slo)];
  }
  // Conservation identity: compliant + violation == observed, per class.
  int64_t compliant_ticks(SloClass slo) const {
    return observed_ticks(slo) - violation_ticks(slo);
  }

  int64_t total_observed_ticks() const;
  int64_t total_violation_ticks() const;

  // Commutative/associative shard merge (integer addition per class).
  void Merge(const SloAccumulator& other);

  bool operator==(const SloAccumulator& other) const;

  // One optum.slo.v1 document (single line, no trailing newline), pinned by
  // the golden schema test. Deterministic: integers and shortest-round-trip
  // doubles via std::to_chars. Classes render in enum order; BE/LS/LSR
  // always appear, other classes only when observed.
  std::string RenderJson(double seconds_per_tick) const;
  bool WriteJsonFile(const std::string& path, double seconds_per_tick) const;

 private:
  int64_t observed_[kNumSloClasses] = {};
  int64_t violation_[kNumSloClasses] = {};
};

}  // namespace optum::obs

#endif  // OPTUM_SRC_OBS_SLO_H_
