// Minimal JSON parser for the repo's own exported documents — the inverse
// of json_writer.h, used by tools that read exports back (bench_diff
// compares BENCH_hotpath.json files; series_plot reads optum.series.v1
// JSONL lines). Recursive-descent into a small DOM; objects keep member
// order (a vector of pairs, not a map) so column order in series lines is
// preserved. Not a general-purpose parser: no \uXXXX surrogate pairs, no
// depth guard beyond the stack — fine for trusted, self-produced input.
#ifndef OPTUM_SRC_OBS_JSON_READER_H_
#define OPTUM_SRC_OBS_JSON_READER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace optum::obs {

struct JsonValue {
  enum class Kind : uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number = 0.0;
  std::string string_value;
  std::vector<JsonValue> items;                              // kArray
  std::vector<std::pair<std::string, JsonValue>> members;    // kObject

  bool is_null() const { return kind == Kind::kNull; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  // Member lookup by key; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const {
    if (kind != Kind::kObject) {
      return nullptr;
    }
    for (const auto& [name, value] : members) {
      if (name == key) {
        return &value;
      }
    }
    return nullptr;
  }

  // Number coercions with defaults, for optional fields.
  double AsNumber(double fallback = 0.0) const {
    return kind == Kind::kNumber ? number : fallback;
  }
  int64_t AsInt(int64_t fallback = 0) const {
    return kind == Kind::kNumber ? static_cast<int64_t>(number) : fallback;
  }
};

// Parses `text` (one complete JSON document; trailing whitespace allowed)
// into `out`. On failure returns false and describes the problem in `error`
// (with a byte offset). `out` is unspecified on failure.
bool ParseJson(std::string_view text, JsonValue* out, std::string* error);

// Slurps `path` into `out` (appended). Returns false only when the file
// cannot be opened; the caller owns the error message.
bool ReadWholeFile(const std::string& path, std::string* out);

// Row accounting for ForEachJsonlRow, so callers can make "header but no
// data" an error (or not — a hotspot stream with zero episodes is valid).
struct JsonlReadStats {
  int64_t data_rows = 0;
};

// Walks a header'd JSONL export: verifies that the first non-empty line's
// "schema" member equals `schema`, then hands every later non-empty line to
// `row`. The final line is processed even without a trailing newline — a
// truncated tail is a parse error, never a silent drop. Returns "" on
// success, otherwise a one-line message (no trailing newline) naming the
// path, ready for `fprintf(stderr, "tool: %s\n", ...)`.
std::string ForEachJsonlRow(const std::string& path, const char* schema,
                            const std::function<void(const JsonValue&)>& row,
                            JsonlReadStats* stats = nullptr);

}  // namespace optum::obs

#endif  // OPTUM_SRC_OBS_JSON_READER_H_
