#include "src/obs/decision_log.h"

#include "src/obs/json_writer.h"

namespace optum::obs {

DecisionLog::DecisionLog(const std::string& path, size_t top_k)
    : file_(OpenJsonSink(path)), top_k_(top_k) {}

DecisionLog::~DecisionLog() {
  if (file_ != nullptr) {
    std::fclose(file_);
  }
}

std::string DecisionLog::Render(const DecisionTrace& trace) {
  JsonWriter w;
  w.BeginObject();
  w.KV("tick", static_cast<int64_t>(trace.tick));
  w.KV("pod", static_cast<int64_t>(trace.pod));
  w.KV("app", static_cast<int64_t>(trace.app));
  w.KV("slo", ToString(trace.slo));
  w.KV("sampled", trace.candidates_sampled);
  w.KV("feasible", trace.candidates_feasible);
  w.KV("chosen", static_cast<int64_t>(trace.chosen));
  w.KV("score", trace.chosen_score);
  w.KV("reason", trace.reject_reason);
  w.Key("top").BeginArray();
  for (const CandidateTrace& c : trace.top) {
    w.BeginObject();
    w.KV("host", static_cast<int64_t>(c.host));
    w.KV("score", c.score);
    w.KV("cpu_util", c.cpu_util);
    w.KV("mem_util", c.mem_util);
    w.KV("usage_fit", c.usage_fit);
    w.KV("interference", c.interference);
    w.KV("cache_misses", c.cache_misses);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.TakeString();
}

void DecisionLog::Append(const DecisionTrace& trace) {
  if (file_ == nullptr) {
    return;
  }
  const std::string line = Render(trace);
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fputc('\n', file_);
  ++records_written_;
}

}  // namespace optum::obs
