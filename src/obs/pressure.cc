#include "src/obs/pressure.h"

#include "src/common/check.h"
#include "src/obs/metrics.h"

namespace optum::obs {

double RawPressure(const PressureConfig& config, const HostPressureInput& input) {
  const double capacity_term =
      input.cpu_util > config.mem_weight * input.mem_util
          ? input.cpu_util
          : config.mem_weight * input.mem_util;
  return capacity_term + config.interference_weight * input.interference;
}

PressureTracker::PressureTracker(size_t num_hosts, PressureConfig config)
    : config_(config), signals_(num_hosts), seen_(num_hosts, 0) {
  OPTUM_CHECK_GT(config_.ewma_alpha, 0.0);
  OPTUM_CHECK_LE(config_.ewma_alpha, 1.0);
}

double PressureTracker::Observe(HostId host, const HostPressureInput& input) {
  const size_t h = static_cast<size_t>(host);
  PressureSignal& s = signals_[h];
  s.raw = RawPressure(config_, input);
  if (seen_[h] == 0) {
    seen_[h] = 1;
    s.smoothed = s.raw;
  } else {
    s.smoothed = config_.ewma_alpha * s.raw +
                 (1.0 - config_.ewma_alpha) * s.smoothed;
  }
  return s.smoothed;
}

HostPressureMonitor::HostPressureMonitor(size_t num_hosts, Options options)
    : options_(options),
      tracker_(num_hosts, options.pressure),
      detector_(num_hosts, options.hotspot),
      slo_shards_(options.num_slo_shards == 0 ? 1 : options.num_slo_shards) {
  OPTUM_CHECK_GT(options_.seconds_per_tick, 0.0);
}

void HostPressureMonitor::WireMetrics(MetricRegistry* registry,
                                        const std::string& prefix) {
  if (registry == nullptr) {
    g_mean_ = nullptr;
    g_max_ = nullptr;
    g_hot_hosts_ = nullptr;
    g_hotspot_events_ = nullptr;
    for (Gauge*& g : g_violation_seconds_) {
      g = nullptr;
    }
    g_observed_seconds_ = nullptr;
    return;
  }
  g_mean_ = registry->gauge(prefix + ".pressure.mean");
  g_max_ = registry->gauge(prefix + ".pressure.max");
  g_hot_hosts_ = registry->gauge(prefix + ".pressure.hot_hosts");
  g_hotspot_events_ = registry->gauge(prefix + ".pressure.hotspot_events");
  static constexpr SloClass kRendered[3] = {SloClass::kBe, SloClass::kLs,
                                            SloClass::kLsr};
  for (size_t i = 0; i < 3; ++i) {
    g_violation_seconds_[i] = registry->gauge(
        prefix + ".slo.violation_seconds_" + ToString(kRendered[i]));
  }
  g_observed_seconds_ = registry->gauge(prefix + ".slo.observed_seconds");
}

void HostPressureMonitor::BeginTick(Tick tick) {
  OPTUM_CHECK(!in_tick_);
  OPTUM_CHECK_GT(tick, tick_);
  tick_ = tick;
  in_tick_ = true;
  any_tick_ = true;
  tick_sum_ = 0.0;
  tick_max_ = 0.0;
  tick_hosts_ = 0;
}

void HostPressureMonitor::ObserveHost(HostId host,
                                      const HostPressureInput& input) {
  const double smoothed = tracker_.Observe(host, input);
  detector_.Observe(host, tick_, smoothed, input.pods_be, input.pods_ls,
                    input.pods_lsr);
  const bool violated = smoothed >= options_.pressure.slo_threshold;
  SloAccumulator& slo =
      slo_shards_[static_cast<size_t>(host) % slo_shards_.size()];
  if (input.pods_be > 0) {
    slo.Observe(SloClass::kBe, input.pods_be, violated);
  }
  if (input.pods_ls > 0) {
    slo.Observe(SloClass::kLs, input.pods_ls, violated);
  }
  if (input.pods_lsr > 0) {
    slo.Observe(SloClass::kLsr, input.pods_lsr, violated);
  }
  tick_sum_ += smoothed;
  if (smoothed > tick_max_) {
    tick_max_ = smoothed;
  }
  ++tick_hosts_;
}

void HostPressureMonitor::EndTick() {
  OPTUM_CHECK(in_tick_);
  in_tick_ = false;
  last_mean_ = tick_hosts_ > 0 ? tick_sum_ / static_cast<double>(tick_hosts_)
                               : 0.0;
  last_max_ = tick_max_;
  if (g_mean_ == nullptr) {
    return;
  }
  g_mean_->Set(last_mean_);
  g_max_->Set(last_max_);
  g_hot_hosts_->Set(static_cast<double>(detector_.hosts_hot()));
  g_hotspot_events_->Set(static_cast<double>(detector_.events_emitted()));
  const SloAccumulator merged = MergedSlo();
  static constexpr SloClass kRendered[3] = {SloClass::kBe, SloClass::kLs,
                                            SloClass::kLsr};
  for (size_t i = 0; i < 3; ++i) {
    g_violation_seconds_[i]->Set(
        static_cast<double>(merged.violation_ticks(kRendered[i])) *
        options_.seconds_per_tick);
  }
  g_observed_seconds_->Set(static_cast<double>(merged.total_observed_ticks()) *
                           options_.seconds_per_tick);
}

void HostPressureMonitor::Finalize() {
  if (any_tick_) {
    detector_.Finalize(tick_);
  }
}

SloAccumulator HostPressureMonitor::MergedSlo() const {
  SloAccumulator merged;
  for (const SloAccumulator& shard : slo_shards_) {
    merged.Merge(shard);
  }
  return merged;
}

bool HostPressureMonitor::WriteSloJson(const std::string& path) const {
  return MergedSlo().WriteJsonFile(path, options_.seconds_per_tick);
}

}  // namespace optum::obs
