#include "src/solver/assignment_solver.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "src/common/check.h"

namespace optum::solver {
namespace {

struct SearchState {
  const AssignmentProblem* problem = nullptr;
  std::vector<size_t> item_order;      // items sorted by decreasing best score
  std::vector<double> best_remaining;  // suffix sums of per-item best scores
  std::vector<Resources> remaining;    // bin capacities during search
  std::vector<int> current;            // working assignment (item -> bin)
  std::vector<int> best_assignment;
  double current_score = 0.0;
  double best_score = 0.0;
  int64_t nodes = 0;
  int64_t budget = 0;
  bool exhausted = false;
};

void Branch(SearchState& s, size_t depth) {
  if (s.nodes >= s.budget) {
    s.exhausted = true;
    return;
  }
  ++s.nodes;

  if (depth == s.item_order.size()) {
    if (s.current_score > s.best_score) {
      s.best_score = s.current_score;
      s.best_assignment = s.current;
    }
    return;
  }
  // Upper bound: current + best possible for all remaining items.
  if (s.current_score + s.best_remaining[depth] <= s.best_score + 1e-12) {
    return;
  }

  const size_t item = s.item_order[depth];
  const Resources& demand = s.problem->demands[item];
  const auto& scores = s.problem->scores[item];

  // Try bins in decreasing score order for fast incumbent improvement.
  std::vector<size_t> bin_order(scores.size());
  std::iota(bin_order.begin(), bin_order.end(), 0u);
  std::sort(bin_order.begin(), bin_order.end(),
            [&](size_t a, size_t b) { return scores[a] > scores[b]; });

  for (size_t b : bin_order) {
    const double score = scores[b];
    if (!std::isfinite(score) || score <= -1e17) {
      continue;  // Forbidden assignment.
    }
    if (!demand.FitsWithin(s.remaining[b])) {
      continue;
    }
    s.remaining[b] -= demand;
    s.current[item] = static_cast<int>(b);
    s.current_score += score;
    Branch(s, depth + 1);
    s.current_score -= score;
    s.current[item] = -1;
    s.remaining[b] += demand;
    if (s.exhausted) {
      return;
    }
  }
  // Leave the item unassigned.
  Branch(s, depth + 1);
}

}  // namespace

AssignmentSolution AssignmentSolver::Solve(const AssignmentProblem& problem) const {
  const size_t n = problem.demands.size();
  OPTUM_CHECK_EQ(problem.scores.size(), n);
  for (const auto& row : problem.scores) {
    OPTUM_CHECK_EQ(row.size(), problem.capacities.size());
  }

  SearchState s;
  s.problem = &problem;
  s.budget = node_budget_;
  s.remaining = problem.capacities;
  s.current.assign(n, -1);
  s.best_assignment.assign(n, -1);

  // Per-item best achievable score (>= 0 since unassigned scores 0).
  std::vector<double> best_item(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (double v : problem.scores[i]) {
      if (std::isfinite(v)) {
        best_item[i] = std::max(best_item[i], v);
      }
    }
  }
  s.item_order.resize(n);
  std::iota(s.item_order.begin(), s.item_order.end(), 0u);
  std::sort(s.item_order.begin(), s.item_order.end(),
            [&](size_t a, size_t b) { return best_item[a] > best_item[b]; });

  s.best_remaining.assign(n + 1, 0.0);
  for (size_t d = n; d-- > 0;) {
    s.best_remaining[d] = s.best_remaining[d + 1] + best_item[s.item_order[d]];
  }

  Branch(s, 0);

  AssignmentSolution out;
  out.assignment = std::move(s.best_assignment);
  out.objective = s.best_score;
  out.optimal = !s.exhausted;
  out.nodes_explored = s.nodes;
  return out;
}

}  // namespace optum::solver
