// Exact solver for small pod→host assignment problems, used by the Medea
// baseline (paper §5.1 caps it at 40 hosts x 15 pods). Maximizes the sum of
// per-assignment scores subject to 2-dimensional bin capacities; items may
// remain unassigned (score 0). Branch-and-bound with a per-item greedy
// upper bound and a node budget to keep worst-case latency bounded.
#ifndef OPTUM_SRC_SOLVER_ASSIGNMENT_SOLVER_H_
#define OPTUM_SRC_SOLVER_ASSIGNMENT_SOLVER_H_

#include <cstdint>
#include <vector>

#include "src/common/types.h"

namespace optum::solver {

struct AssignmentProblem {
  // demand[i]: resource demand of item i.
  std::vector<Resources> demands;
  // capacity[b]: remaining capacity of bin b.
  std::vector<Resources> capacities;
  // score[i][b]: value of assigning item i to bin b. Use a large negative
  // value (or -inf) to forbid the assignment.
  std::vector<std::vector<double>> scores;
};

struct AssignmentSolution {
  // bin index per item; -1 = unassigned.
  std::vector<int> assignment;
  double objective = 0.0;
  bool optimal = false;     // false if the node budget was exhausted
  int64_t nodes_explored = 0;
};

class AssignmentSolver {
 public:
  explicit AssignmentSolver(int64_t node_budget = 2'000'000)
      : node_budget_(node_budget) {}

  AssignmentSolution Solve(const AssignmentProblem& problem) const;

 private:
  int64_t node_budget_;
};

}  // namespace optum::solver

#endif  // OPTUM_SRC_SOLVER_ASSIGNMENT_SOLVER_H_
