// Colocation study: runs the same unified workload through every scheduler
// in the library and compares utilization, violations, queueing, and pod
// performance — a miniature of the paper's §5 evaluation.
//
// Usage: colocation_study [hosts] [hours]
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "src/common/table_printer.h"
#include "src/core/offline_profiler.h"
#include "src/core/optum_scheduler.h"
#include "src/sched/baselines.h"
#include "src/sched/medea.h"
#include "src/sim/simulator.h"
#include "src/stats/descriptive.h"
#include "src/trace/workload_generator.h"

using namespace optum;

namespace {

struct StudyRow {
  std::string name;
  SimResult result;
};

void Report(TablePrinter& table, const StudyRow& row, double ref_util) {
  std::vector<double> be_waits;
  double max_psi_sum = 0;
  int64_t ls_pods = 0;
  for (const auto& rec : row.result.trace.lifecycles) {
    if (rec.slo == SloClass::kBe && rec.schedule_tick >= 0) {
      be_waits.push_back(rec.waiting_seconds);
    } else if (IsLatencySensitive(rec.slo) && rec.schedule_tick >= 0) {
      max_psi_sum += rec.max_cpu_psi;
      ++ls_pods;
    }
  }
  const double util = row.result.MeanCpuUtilNonIdle();
  table.AddRow({row.name, FormatDouble(util, 4),
                FormatDouble((util / ref_util - 1.0) * 100.0, 3),
                FormatDouble(row.result.violation_rate(), 3),
                FormatDouble(be_waits.empty() ? 0.0 : Percentile(be_waits, 95), 4),
                FormatDouble(ls_pods > 0 ? max_psi_sum / ls_pods : 0.0, 3),
                FormatDouble(row.result.never_scheduled_pods, 9)});
}

}  // namespace

int main(int argc, char** argv) {
  const int hosts = argc > 1 ? std::atoi(argv[1]) : 64;
  const Tick horizon = (argc > 2 ? std::atoi(argv[2]) : 12) * kTicksPerHour;

  WorkloadConfig config;
  config.num_hosts = hosts;
  config.horizon = horizon;
  config.seed = 42;
  const Workload workload = WorkloadGenerator(config).Generate();
  std::printf("colocation study: %d hosts, %lld ticks, %zu pods\n", hosts,
              static_cast<long long>(horizon), workload.pods.size());

  SimConfig sim_config;
  sim_config.pod_usage_period = 5;
  sim_config.max_attempts_per_tick = 1500;

  std::vector<StudyRow> rows;
  AlibabaBaseline reference;
  rows.push_back({"Alibaba (ref)", Simulator(workload, sim_config, reference).Run()});
  {
    auto p = MakeBorgLike();
    rows.push_back({p->name(), Simulator(workload, sim_config, *p).Run()});
  }
  {
    auto p = MakeNSigmaScheduler();
    rows.push_back({p->name(), Simulator(workload, sim_config, *p).Run()});
  }
  {
    auto p = MakeResourceCentralLike();
    rows.push_back({p->name(), Simulator(workload, sim_config, *p).Run()});
  }
  {
    Medea medea;
    rows.push_back({medea.name(), Simulator(workload, sim_config, medea).Run()});
  }
  {
    core::OfflineProfilerConfig prof_config;
    prof_config.max_train_samples = 1000;
    core::OptumProfiles profiles =
        core::OfflineProfiler(prof_config).BuildProfiles(rows.front().result.trace);
    auto optum = std::make_unique<core::OptumScheduler>(std::move(profiles));
    SimConfig optum_config = sim_config;
    core::OptumScheduler* raw = optum.get();
    optum_config.on_tick_end = [raw](const ClusterState& cluster, Tick now) {
      raw->ObserveColocation(cluster, now);
    };
    rows.push_back({optum->name(), Simulator(workload, optum_config, *optum).Run()});
  }

  TablePrinter table({"scheduler", "cpu util", "improve(%)", "violation", "BE wait p95(s)",
                      "LS mean maxPSI", "pending@end"});
  const double ref_util = rows.front().result.MeanCpuUtilNonIdle();
  for (const StudyRow& row : rows) {
    Report(table, row, ref_util);
  }
  table.Print();
  return 0;
}
