// Predictor playground: generates a trace, persists it to CSV, reloads it,
// profiles applications offline (ERO table + interference models), and
// inspects the resulting profiles — the full offline half of Optum.
//
// Usage: predictor_playground [trace_dir]
#include <cstdio>
#include <filesystem>

#include "src/common/table_printer.h"
#include "src/core/offline_profiler.h"
#include "src/core/resource_usage_predictor.h"
#include "src/sched/baselines.h"
#include "src/sim/simulator.h"
#include "src/trace/trace_io.h"
#include "src/trace/workload_generator.h"

using namespace optum;

int main(int argc, char** argv) {
  const std::string trace_dir =
      argc > 1 ? argv[1]
               : (std::filesystem::temp_directory_path() / "optum_playground").string();

  // 1) Generate a workload and record a trace under the reference scheduler.
  WorkloadConfig config;
  config.num_hosts = 48;
  config.horizon = kTicksPerDay / 2;
  config.seed = 7;
  const Workload workload = WorkloadGenerator(config).Generate();
  AlibabaBaseline scheduler;
  SimConfig sim_config;
  sim_config.pod_usage_period = 5;
  const SimResult result = Simulator(workload, sim_config, scheduler).Run();
  std::printf("simulated %zu pods; %zu pod-usage records\n", workload.pods.size(),
              result.trace.pod_usage.size());

  // 2) Persist and reload the trace (the CSV layout mirrors the Alibaba
  //    trace fields, so real trace data can be dropped in here).
  if (!WriteTraceBundle(result.trace, trace_dir)) {
    std::fprintf(stderr, "failed to write trace to %s\n", trace_dir.c_str());
    return 1;
  }
  TraceBundle loaded;
  if (!ReadTraceBundle(trace_dir, &loaded)) {
    std::fprintf(stderr, "failed to reload trace from %s\n", trace_dir.c_str());
    return 1;
  }
  std::printf("trace persisted to %s and reloaded (%zu usage records)\n",
              trace_dir.c_str(), loaded.pod_usage.size());

  // 3) Offline profiling on the reloaded trace.
  core::OfflineProfilerConfig prof_config;
  prof_config.max_train_samples = 1000;
  core::OfflineProfiler profiler(prof_config);
  const core::OptumProfiles profiles = profiler.BuildProfiles(loaded);

  // 4) Inspect: ERO distribution and a few application profiles.
  double ero_sum = 0;
  double ero_min = 1.0;
  int ero_n = 0;
  for (const AppProfile& a : workload.apps) {
    for (const AppProfile& b : workload.apps) {
      if (a.id <= b.id && profiles.ero.Contains(a.id, b.id)) {
        const double v = profiles.ero.Get(a.id, b.id);
        ero_sum += v;
        ero_min = std::min(ero_min, v);
        ++ero_n;
      }
    }
  }
  std::printf("\nERO table: %d observed pairs, mean %.3f, min %.3f "
              "(unseen pairs default to 1.0)\n",
              ero_n, ero_sum / ero_n, ero_min);

  TablePrinter table({"app", "class", "samples", "mem profile", "holdout MAPE",
                      "has model"});
  int shown = 0;
  for (const AppProfile& app : workload.apps) {
    const core::AppModel* model = profiles.Find(app.id);
    if (model == nullptr || shown >= 12) {
      continue;
    }
    ++shown;
    table.AddRow({FormatDouble(app.id, 4), ToString(app.slo),
                  FormatDouble(model->stats.sample_count, 9),
                  FormatDouble(model->stats.mem_profile, 3),
                  model->holdout_mape < 0 ? "-" : FormatDouble(model->holdout_mape, 3),
                  model->usable() ? "yes" : "no"});
  }
  table.Print();

  // 5) Demonstrate the pairwise usage predictor on a synthetic host.
  ClusterState cluster(1, kUnitResources, 16);
  core::ResourceUsagePredictor predictor(&profiles);
  double request_sum = 0.0;
  std::printf("\nPacking pods onto one host; POC vs sum(requests):\n");
  for (int i = 0; i < 12; ++i) {
    const AppProfile& app = workload.apps[static_cast<size_t>(i * 7 % workload.apps.size())];
    PodSpec pod;
    pod.id = 1000 + i;
    pod.app = app.id;
    pod.slo = app.slo;
    pod.request = app.request;
    pod.limit = app.limit;
    cluster.Place(pod, &app, 0, 0);
    request_sum += app.request.cpu;
    const Resources poc = predictor.PredictHost(cluster.host(0), nullptr);
    std::printf("  pods=%2d  sum(requests)=%.3f  POC=%.3f  (saves %.0f%%)\n", i + 1,
                request_sum, poc.cpu, (1.0 - poc.cpu / request_sum) * 100.0);
  }
  std::printf("\nEq. 3 in action: the pairwise peak estimate stays well below the\n"
              "request sum, which is the headroom Optum converts into utilization.\n");
  return 0;
}
