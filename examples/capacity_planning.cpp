// Capacity planning: how many hosts does a fixed workload need under each
// scheduler? Sweeps the cluster size downward and reports the smallest
// cluster on which the workload still runs with every pod scheduled and a
// bounded violation rate — the "save up to 15% of resources" claim viewed
// from the other side.
//
// Usage: capacity_planning [max_hosts]
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>

#include "src/common/table_printer.h"
#include "src/core/offline_profiler.h"
#include "src/core/optum_scheduler.h"
#include "src/sched/baselines.h"
#include "src/sim/simulator.h"
#include "src/trace/workload_generator.h"

using namespace optum;

namespace {

struct Attempt {
  bool feasible = false;
  double util = 0.0;
  double violation = 0.0;
  int64_t pending = 0;
};

// Runs the workload (generated for `workload_hosts`) on a cluster of
// `cluster_hosts` and checks whether it fits.
Attempt TryCluster(const Workload& workload, int cluster_hosts,
                   const std::function<std::unique_ptr<PlacementPolicy>()>& make_policy) {
  Workload shrunk = workload;
  shrunk.config.num_hosts = cluster_hosts;
  SimConfig sim_config;
  sim_config.pod_usage_period = 8;
  auto policy = make_policy();
  const SimResult result = Simulator(shrunk, sim_config, *policy).Run();
  Attempt a;
  a.util = result.MeanCpuUtilNonIdle();
  a.violation = result.violation_rate();
  a.pending = result.never_scheduled_pods;
  // Feasible: (almost) everything scheduled — a handful of stragglers
  // submitted right before the horizon is tolerated — and violations
  // bounded.
  const int64_t straggler_budget =
      std::max<int64_t>(5, static_cast<int64_t>(workload.pods.size() / 200));
  a.feasible = result.never_scheduled_pods <= straggler_budget && a.violation < 0.01;
  return a;
}

}  // namespace

int main(int argc, char** argv) {
  const int max_hosts = argc > 1 ? std::atoi(argv[1]) : 64;

  WorkloadConfig config;
  config.num_hosts = max_hosts;
  config.horizon = kTicksPerDay / 2;
  config.seed = 21;
  const Workload workload = WorkloadGenerator(config).Generate();
  std::printf("capacity planning: workload sized for %d hosts (%zu pods)\n", max_hosts,
              workload.pods.size());

  // Profile once from a reference run at full size.
  AlibabaBaseline reference;
  SimConfig ref_config;
  ref_config.pod_usage_period = 5;
  const SimResult ref_result = Simulator(workload, ref_config, reference).Run();
  core::OfflineProfilerConfig prof_config;
  prof_config.max_train_samples = 800;

  TablePrinter table({"scheduler", "min hosts", "saving vs ref (%)", "util @ min",
                      "violation @ min"});
  int reference_min = -1;

  struct Candidate {
    std::string name;
    std::function<std::unique_ptr<PlacementPolicy>()> make;
  };
  std::vector<Candidate> candidates;
  candidates.push_back({"Alibaba", [] { return std::make_unique<AlibabaBaseline>(); }});
  candidates.push_back({"Borg-like", [] { return MakeBorgLike(); }});
  candidates.push_back(
      {"Optum", [&] {
         core::OptumProfiles profiles =
             core::OfflineProfiler(prof_config).BuildProfiles(ref_result.trace);
         return std::make_unique<core::OptumScheduler>(std::move(profiles));
       }});

  for (const Candidate& candidate : candidates) {
    int best = -1;
    Attempt best_attempt;
    // Downward sweep in 10% steps.
    for (int hosts = max_hosts; hosts >= max_hosts / 2; hosts -= max_hosts / 10) {
      const Attempt attempt = TryCluster(workload, hosts, candidate.make);
      if (!attempt.feasible) {
        break;
      }
      best = hosts;
      best_attempt = attempt;
    }
    if (candidate.name == "Alibaba" && best > 0) {
      reference_min = best;
    }
    const double saving = reference_min > 0 && best > 0
                              ? (1.0 - static_cast<double>(best) / reference_min) * 100.0
                              : 0.0;
    table.AddRow({candidate.name, best < 0 ? "-" : FormatDouble(best, 4),
                  FormatDouble(saving, 3), FormatDouble(best_attempt.util, 3),
                  FormatDouble(best_attempt.violation, 3)});
  }
  table.Print();
  std::printf("\nA scheduler that packs better runs the same workload on fewer hosts;\n"
              "the paper reports Optum saving up to 15%% of resources.\n");
  return 0;
}
