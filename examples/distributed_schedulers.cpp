// Distributed unified scheduling (paper §4.4): several Online Schedulers
// decide in parallel over one burst of pods; the Deployment Module commits
// only the highest-scoring pod per contended host and re-dispatches the
// rest. This example schedules one arrival burst with 1, 2, 4, and 8
// parallel schedulers and reports conflicts, rounds, and placement quality.
//
// Usage: distributed_schedulers [hosts] [burst_size]
#include <cstdio>
#include <cstdlib>

#include "src/common/table_printer.h"
#include "src/core/distributed.h"
#include "src/core/offline_profiler.h"
#include "src/sched/baselines.h"
#include "src/sim/simulator.h"
#include "src/trace/workload_generator.h"

using namespace optum;

int main(int argc, char** argv) {
  const int hosts = argc > 1 ? std::atoi(argv[1]) : 64;
  const size_t burst = argc > 2 ? static_cast<size_t>(std::atoi(argv[2])) : 400;

  // Profile from a short reference run, as usual.
  WorkloadConfig config;
  config.num_hosts = hosts;
  config.horizon = kTicksPerDay / 4;
  config.seed = 17;
  const Workload workload = WorkloadGenerator(config).Generate();
  AlibabaBaseline reference;
  SimConfig sim_config;
  sim_config.pod_usage_period = 5;
  const SimResult ref_result = Simulator(workload, sim_config, reference).Run();
  core::OfflineProfilerConfig prof_config;
  prof_config.max_train_samples = 600;
  const core::OptumProfiles profiles =
      core::OfflineProfiler(prof_config).BuildProfiles(ref_result.trace);

  // The burst: the first `burst` BE pods of the workload.
  std::vector<const PodSpec*> batch;
  for (const PodSpec& pod : workload.pods) {
    if (pod.slo == SloClass::kBe) {
      batch.push_back(&pod);
      if (batch.size() == burst) {
        break;
      }
    }
  }
  std::printf("distributed scheduling: %d hosts, burst of %zu BE pods\n", hosts,
              batch.size());

  TablePrinter table({"schedulers", "placed", "unplaced", "conflicts", "rounds",
                      "max pods on one host"});
  for (const size_t k : {1u, 2u, 4u, 8u}) {
    // Fresh cluster per configuration, pre-loaded with the LS fleet.
    ClusterState cluster(hosts, kUnitResources, 32);
    Rng spread(3);
    for (const PodSpec& pod : workload.pods) {
      if (pod.submit_tick != 0 || pod.slo == SloClass::kBe) {
        continue;
      }
      const AppProfile& app = AppOf(workload, pod.app);
      for (int attempt = 0; attempt < 8; ++attempt) {
        const HostId host = static_cast<HostId>(spread.NextBelow(hosts));
        if (AffinityAllows(pod, cluster.host(host)) &&
            cluster.host(host).request_sum.cpu + pod.request.cpu <= 1.2) {
          PodRuntime* rt = cluster.Place(pod, &app, host, 0);
          rt->cpu_usage = app.request.cpu * app.cpu_usage_fraction;
          rt->mem_usage = app.request.mem * app.mem_usage_fraction;
          break;
        }
      }
    }

    core::DistributedConfig dist_config;
    dist_config.num_schedulers = k;
    core::DistributedCoordinator coordinator(profiles, dist_config);
    const core::DistributedOutcome outcome = coordinator.ScheduleBatch(
        batch, cluster, [&](const core::ScheduleProposal& winner) {
          // Apply the placement so the next round sees the new state.
          const PodSpec* pod = nullptr;
          for (const PodSpec* candidate : batch) {
            if (candidate->id == winner.pod) {
              pod = candidate;
              break;
            }
          }
          cluster.Place(*pod, &AppOf(workload, pod->app), winner.host, 1);
        });

    size_t max_on_host = 0;
    for (const Host& h : cluster.hosts()) {
      max_on_host = std::max(max_on_host, h.pods.size());
    }
    table.AddRow({FormatDouble(k, 3), FormatDouble(outcome.placed.size(), 9),
                  FormatDouble(outcome.unplaced.size(), 9),
                  FormatDouble(outcome.conflicts_resolved, 9),
                  FormatDouble(outcome.rounds_used, 9), FormatDouble(max_on_host, 9)});
  }
  table.Print();
  std::printf("\nWith more parallel schedulers, same-round conflicts appear (several\n"
              "shards pick the same high-scoring host) and are resolved by the\n"
              "Deployment Module: the best-scoring pod commits, losers re-dispatch\n"
              "to the next round (paper §4.4).\n");
  return 0;
}
