// Full closed-loop Optum deployment (paper Fig. 17): the system starts
// COLD — empty profiles, fully conservative ERO — and bootstraps itself:
// the Tracing Coordinator collects metrics, the background profiler
// periodically re-trains interference models and memory profiles from the
// rolling window, and online ERO observation tightens the usage predictor
// continuously. Utilization should climb as the profiles mature.
//
// Usage: full_system [hosts] [hours]
#include <cstdio>
#include <cstdlib>

#include "src/common/table_printer.h"
#include "src/core/optum_system.h"
#include "src/sched/baselines.h"
#include "src/sim/simulator.h"
#include "src/trace/workload_generator.h"

using namespace optum;

int main(int argc, char** argv) {
  const int hosts = argc > 1 ? std::atoi(argv[1]) : 64;
  const Tick horizon = (argc > 2 ? std::atoi(argv[2]) : 16) * kTicksPerHour;

  WorkloadConfig config;
  config.num_hosts = hosts;
  config.horizon = horizon;
  config.seed = 42;
  const Workload workload = WorkloadGenerator(config).Generate();
  std::printf("full system demo: %d hosts, %lld ticks, %zu pods (cold start)\n", hosts,
              static_cast<long long>(horizon), workload.pods.size());

  // Reference run for comparison.
  AlibabaBaseline reference;
  SimConfig ref_config;
  ref_config.pod_usage_period = 5;
  const SimResult ref_result = Simulator(workload, ref_config, reference).Run();

  // Two deployments of the closed loop:
  //  * COLD: empty bootstrap — the system must learn everything live.
  //  * WARM: bootstrapped from profiles trained on the reference trace
  //    (the paper trains on seven prior days before evaluating).
  auto run_system = [&](core::OptumProfiles bootstrap, const char* label) {
    core::OptumSystemConfig system_config;
    system_config.reprofile_period = 2 * kTicksPerHour;
    system_config.warmup = kTicksPerHour;
    system_config.profiler.max_train_samples = 800;
    core::OptumSystem system(system_config, std::move(bootstrap));
    SimConfig sim_config;
    sim_config.pod_usage_period = 5;
    sim_config.on_tick_end = [&system](const ClusterState& cluster, Tick now) {
      system.OnTickEnd(cluster, now);
    };
    const SimResult result = Simulator(workload, sim_config, system).Run();
    std::printf("  [%s] reprofiling passes: %lld, window pod records: %zu\n", label,
                static_cast<long long>(system.reprofile_count()),
                system.coordinator().pod_records());
    return result;
  };

  std::printf("\nrunning cold-started system...\n");
  const SimResult cold = run_system(core::OptumProfiles{}, "cold");
  std::printf("running warm-bootstrapped system...\n");
  core::OfflineProfilerConfig prof_config;
  prof_config.max_train_samples = 800;
  const SimResult warm = run_system(
      core::OfflineProfiler(prof_config).BuildProfiles(ref_result.trace), "warm");

  // Utilization trajectory, two-hourly.
  TablePrinter table({"hour", "reference", "optum cold", "optum warm"});
  const size_t per_hour = static_cast<size_t>(kTicksPerHour / 2);
  const size_t n = std::min({cold.util_series.size(), warm.util_series.size(),
                             ref_result.util_series.size()});
  for (size_t start = 0; start + per_hour <= n; start += 2 * per_hour) {
    double cold_acc = 0, warm_acc = 0, ref_acc = 0;
    for (size_t i = start; i < start + per_hour; ++i) {
      cold_acc += cold.util_series[i].avg_cpu_nonidle;
      warm_acc += warm.util_series[i].avg_cpu_nonidle;
      ref_acc += ref_result.util_series[i].avg_cpu_nonidle;
    }
    table.AddRow({FormatDouble(start / per_hour, 3), FormatDouble(ref_acc / per_hour, 3),
                  FormatDouble(cold_acc / per_hour, 3),
                  FormatDouble(warm_acc / per_hour, 3)});
  }
  table.Print();
  std::printf(
      "\noverall: reference %.3f | cold %.3f (%+.1f%%) | warm %.3f (%+.1f%%)\n",
      ref_result.MeanCpuUtilNonIdle(), cold.MeanCpuUtilNonIdle(),
      (cold.MeanCpuUtilNonIdle() / ref_result.MeanCpuUtilNonIdle() - 1) * 100,
      warm.MeanCpuUtilNonIdle(),
      (warm.MeanCpuUtilNonIdle() / ref_result.MeanCpuUtilNonIdle() - 1) * 100);
  std::printf(
      "Shape check: warm profiles unlock the paper's utilization gain; the cold\n"
      "system stays safe (>= reference's violation discipline) but cannot\n"
      "consolidate the long-running pods it placed conservatively at startup —\n"
      "profiles, not luck, are what the gain is made of.\n");
  return 0;
}
