// Quickstart: generate a synthetic unified-scheduling workload, run the
// characterized Alibaba baseline scheduler, profile its trace offline, then
// run Optum on the same workload and compare utilization and performance.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/quickstart
#include <cstdio>

#include "src/core/offline_profiler.h"
#include "src/core/optum_scheduler.h"
#include "src/sched/baselines.h"
#include "src/sim/simulator.h"
#include "src/trace/workload_generator.h"

using namespace optum;

int main() {
  // 1) A small cluster: 64 hosts, half a simulated day.
  WorkloadConfig wl_config;
  wl_config.num_hosts = 64;
  wl_config.horizon = kTicksPerDay / 2;
  wl_config.seed = 42;
  Workload workload = WorkloadGenerator(wl_config).Generate();
  std::printf("workload: %zu apps, %zu pods over %lld ticks\n", workload.apps.size(),
              workload.pods.size(), static_cast<long long>(wl_config.horizon));

  // 2) Baseline run: the production-like unified scheduler.
  SimConfig sim_config;
  sim_config.pod_usage_period = 5;
  AlibabaBaseline baseline;
  SimResult base_result = Simulator(workload, sim_config, baseline).Run();
  std::printf("[%s] scheduled=%lld avg cpu util (non-idle)=%.3f violation=%.5f\n",
              baseline.name().c_str(), static_cast<long long>(base_result.scheduled_pods),
              base_result.MeanCpuUtilNonIdle(), base_result.violation_rate());

  // 3) Offline profiling from the baseline trace (the paper trains on the
  //    first seven days and evaluates on the eighth).
  core::OfflineProfilerConfig prof_config;
  core::OfflineProfiler profiler(prof_config);
  core::OptumProfiles profiles = profiler.BuildProfiles(base_result.trace);
  size_t modeled = 0;
  for (const auto& [id, model] : profiles.apps) {
    modeled += model.usable() ? 1 : 0;
  }
  std::printf("profiles: %zu apps (%zu with interference models), ERO pairs=%zu\n",
              profiles.apps.size(), modeled, profiles.ero.size());

  // 4) Optum run on the same workload.
  core::OptumConfig optum_config;
  core::OptumScheduler optum(std::move(profiles), optum_config);
  SimConfig optum_sim = sim_config;
  optum_sim.on_tick_end = [&optum](const ClusterState& cluster, Tick now) {
    optum.ObserveColocation(cluster, now);
  };
  SimResult optum_result = Simulator(workload, optum_sim, optum).Run();
  std::printf("[%s] scheduled=%lld avg cpu util (non-idle)=%.3f violation=%.5f\n",
              optum.name().c_str(), static_cast<long long>(optum_result.scheduled_pods),
              optum_result.MeanCpuUtilNonIdle(), optum_result.violation_rate());

  const double improvement =
      (optum_result.MeanCpuUtilNonIdle() - base_result.MeanCpuUtilNonIdle()) /
      std::max(1e-9, base_result.MeanCpuUtilNonIdle()) * 100.0;
  std::printf("CPU utilization improvement over baseline: %+.1f%%\n", improvement);
  return 0;
}
