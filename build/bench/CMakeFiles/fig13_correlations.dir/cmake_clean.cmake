file(REMOVE_RECURSE
  "CMakeFiles/fig13_correlations.dir/fig13_correlations.cc.o"
  "CMakeFiles/fig13_correlations.dir/fig13_correlations.cc.o.d"
  "fig13_correlations"
  "fig13_correlations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_correlations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
