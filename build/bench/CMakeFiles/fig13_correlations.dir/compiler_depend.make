# Empty compiler generated dependencies file for fig13_correlations.
# This may be replaced when dependencies are built.
