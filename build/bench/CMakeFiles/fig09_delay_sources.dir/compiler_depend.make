# Empty compiler generated dependencies file for fig09_delay_sources.
# This may be replaced when dependencies are built.
