# Empty dependencies file for fig20_performance.
# This may be replaced when dependencies are built.
