file(REMOVE_RECURSE
  "CMakeFiles/fig20_performance.dir/fig20_performance.cc.o"
  "CMakeFiles/fig20_performance.dir/fig20_performance.cc.o.d"
  "fig20_performance"
  "fig20_performance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
