file(REMOVE_RECURSE
  "CMakeFiles/fig11_predictor_errors.dir/fig11_predictor_errors.cc.o"
  "CMakeFiles/fig11_predictor_errors.dir/fig11_predictor_errors.cc.o.d"
  "fig11_predictor_errors"
  "fig11_predictor_errors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_predictor_errors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
