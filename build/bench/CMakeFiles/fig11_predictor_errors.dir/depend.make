# Empty dependencies file for fig11_predictor_errors.
# This may be replaced when dependencies are built.
