# Empty dependencies file for fig02_slo_distribution.
# This may be replaced when dependencies are built.
