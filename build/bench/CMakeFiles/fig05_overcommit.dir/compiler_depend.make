# Empty compiler generated dependencies file for fig05_overcommit.
# This may be replaced when dependencies are built.
