file(REMOVE_RECURSE
  "CMakeFiles/fig05_overcommit.dir/fig05_overcommit.cc.o"
  "CMakeFiles/fig05_overcommit.dir/fig05_overcommit.cc.o.d"
  "fig05_overcommit"
  "fig05_overcommit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_overcommit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
