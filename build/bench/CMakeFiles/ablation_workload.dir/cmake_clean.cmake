file(REMOVE_RECURSE
  "CMakeFiles/ablation_workload.dir/ablation_workload.cc.o"
  "CMakeFiles/ablation_workload.dir/ablation_workload.cc.o.d"
  "ablation_workload"
  "ablation_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
