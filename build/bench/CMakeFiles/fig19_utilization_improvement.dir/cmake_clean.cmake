file(REMOVE_RECURSE
  "CMakeFiles/fig19_utilization_improvement.dir/fig19_utilization_improvement.cc.o"
  "CMakeFiles/fig19_utilization_improvement.dir/fig19_utilization_improvement.cc.o.d"
  "fig19_utilization_improvement"
  "fig19_utilization_improvement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_utilization_improvement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
