# Empty compiler generated dependencies file for fig10_alignment_ranks.
# This may be replaced when dependencies are built.
