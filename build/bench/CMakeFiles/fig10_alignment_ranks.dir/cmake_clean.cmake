file(REMOVE_RECURSE
  "CMakeFiles/fig10_alignment_ranks.dir/fig10_alignment_ranks.cc.o"
  "CMakeFiles/fig10_alignment_ranks.dir/fig10_alignment_ranks.cc.o.d"
  "fig10_alignment_ranks"
  "fig10_alignment_ranks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_alignment_ranks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
