file(REMOVE_RECURSE
  "CMakeFiles/fig04_utilization.dir/fig04_utilization.cc.o"
  "CMakeFiles/fig04_utilization.dir/fig04_utilization.cc.o.d"
  "fig04_utilization"
  "fig04_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
