# Empty dependencies file for ablation_optum.
# This may be replaced when dependencies are built.
