file(REMOVE_RECURSE
  "CMakeFiles/ablation_optum.dir/ablation_optum.cc.o"
  "CMakeFiles/ablation_optum.dir/ablation_optum.cc.o.d"
  "ablation_optum"
  "ablation_optum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_optum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
