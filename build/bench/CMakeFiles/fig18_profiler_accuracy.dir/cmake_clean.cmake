file(REMOVE_RECURSE
  "CMakeFiles/fig18_profiler_accuracy.dir/fig18_profiler_accuracy.cc.o"
  "CMakeFiles/fig18_profiler_accuracy.dir/fig18_profiler_accuracy.cc.o.d"
  "fig18_profiler_accuracy"
  "fig18_profiler_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_profiler_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
