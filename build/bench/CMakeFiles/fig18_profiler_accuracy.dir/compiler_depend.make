# Empty compiler generated dependencies file for fig18_profiler_accuracy.
# This may be replaced when dependencies are built.
