# Empty dependencies file for fig21_parameter_sensitivity.
# This may be replaced when dependencies are built.
