file(REMOVE_RECURSE
  "CMakeFiles/fig06_request_vs_usage.dir/fig06_request_vs_usage.cc.o"
  "CMakeFiles/fig06_request_vs_usage.dir/fig06_request_vs_usage.cc.o.d"
  "fig06_request_vs_usage"
  "fig06_request_vs_usage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_request_vs_usage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
