# Empty compiler generated dependencies file for fig06_request_vs_usage.
# This may be replaced when dependencies are built.
