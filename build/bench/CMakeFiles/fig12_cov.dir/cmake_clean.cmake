file(REMOVE_RECURSE
  "CMakeFiles/fig12_cov.dir/fig12_cov.cc.o"
  "CMakeFiles/fig12_cov.dir/fig12_cov.cc.o.d"
  "fig12_cov"
  "fig12_cov.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_cov.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
