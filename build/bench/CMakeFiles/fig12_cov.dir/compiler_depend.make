# Empty compiler generated dependencies file for fig12_cov.
# This may be replaced when dependencies are built.
