file(REMOVE_RECURSE
  "CMakeFiles/fig22_overhead.dir/fig22_overhead.cc.o"
  "CMakeFiles/fig22_overhead.dir/fig22_overhead.cc.o.d"
  "fig22_overhead"
  "fig22_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig22_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
