# Empty compiler generated dependencies file for fig22_overhead.
# This may be replaced when dependencies are built.
