# Empty dependencies file for fig07_arrival_rate.
# This may be replaced when dependencies are built.
