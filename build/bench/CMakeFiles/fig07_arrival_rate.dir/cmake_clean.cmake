file(REMOVE_RECURSE
  "CMakeFiles/fig07_arrival_rate.dir/fig07_arrival_rate.cc.o"
  "CMakeFiles/fig07_arrival_rate.dir/fig07_arrival_rate.cc.o.d"
  "fig07_arrival_rate"
  "fig07_arrival_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_arrival_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
