file(REMOVE_RECURSE
  "CMakeFiles/ml_linalg_test.dir/ml_linalg_test.cc.o"
  "CMakeFiles/ml_linalg_test.dir/ml_linalg_test.cc.o.d"
  "ml_linalg_test"
  "ml_linalg_test.pdb"
  "ml_linalg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_linalg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
