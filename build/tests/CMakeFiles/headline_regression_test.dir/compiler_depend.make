# Empty compiler generated dependencies file for headline_regression_test.
# This may be replaced when dependencies are built.
