file(REMOVE_RECURSE
  "CMakeFiles/headline_regression_test.dir/headline_regression_test.cc.o"
  "CMakeFiles/headline_regression_test.dir/headline_regression_test.cc.o.d"
  "headline_regression_test"
  "headline_regression_test.pdb"
  "headline_regression_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/headline_regression_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
