# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/ml_linalg_test[1]_include.cmake")
include("/root/repo/build/tests/ml_models_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/predict_test[1]_include.cmake")
include("/root/repo/build/tests/solver_test[1]_include.cmake")
include("/root/repo/build/tests/sched_test[1]_include.cmake")
include("/root/repo/build/tests/core_profiler_test[1]_include.cmake")
include("/root/repo/build/tests/core_scheduler_test[1]_include.cmake")
include("/root/repo/build/tests/core_distributed_test[1]_include.cmake")
include("/root/repo/build/tests/core_system_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/headline_regression_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/edge_cases_test[1]_include.cmake")
include("/root/repo/build/tests/stats_property_test[1]_include.cmake")
include("/root/repo/build/tests/ml_property_test[1]_include.cmake")
include("/root/repo/build/tests/sim_property_test[1]_include.cmake")
include("/root/repo/build/tests/tooling_test[1]_include.cmake")
include("/root/repo/build/tests/scenarios_test[1]_include.cmake")
