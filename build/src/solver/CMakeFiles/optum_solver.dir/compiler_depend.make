# Empty compiler generated dependencies file for optum_solver.
# This may be replaced when dependencies are built.
