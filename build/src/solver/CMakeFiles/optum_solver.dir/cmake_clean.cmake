file(REMOVE_RECURSE
  "CMakeFiles/optum_solver.dir/assignment_solver.cc.o"
  "CMakeFiles/optum_solver.dir/assignment_solver.cc.o.d"
  "liboptum_solver.a"
  "liboptum_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optum_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
