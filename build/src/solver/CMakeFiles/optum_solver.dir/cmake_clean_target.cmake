file(REMOVE_RECURSE
  "liboptum_solver.a"
)
