# Empty compiler generated dependencies file for optum_stats.
# This may be replaced when dependencies are built.
