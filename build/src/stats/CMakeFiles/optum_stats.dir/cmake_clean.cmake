file(REMOVE_RECURSE
  "CMakeFiles/optum_stats.dir/cdf.cc.o"
  "CMakeFiles/optum_stats.dir/cdf.cc.o.d"
  "CMakeFiles/optum_stats.dir/descriptive.cc.o"
  "CMakeFiles/optum_stats.dir/descriptive.cc.o.d"
  "CMakeFiles/optum_stats.dir/patterns.cc.o"
  "CMakeFiles/optum_stats.dir/patterns.cc.o.d"
  "CMakeFiles/optum_stats.dir/rng.cc.o"
  "CMakeFiles/optum_stats.dir/rng.cc.o.d"
  "liboptum_stats.a"
  "liboptum_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optum_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
