file(REMOVE_RECURSE
  "liboptum_stats.a"
)
