file(REMOVE_RECURSE
  "CMakeFiles/optum_sim.dir/cluster.cc.o"
  "CMakeFiles/optum_sim.dir/cluster.cc.o.d"
  "CMakeFiles/optum_sim.dir/psi_model.cc.o"
  "CMakeFiles/optum_sim.dir/psi_model.cc.o.d"
  "CMakeFiles/optum_sim.dir/simulator.cc.o"
  "CMakeFiles/optum_sim.dir/simulator.cc.o.d"
  "liboptum_sim.a"
  "liboptum_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optum_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
