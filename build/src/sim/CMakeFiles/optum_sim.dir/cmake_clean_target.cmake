file(REMOVE_RECURSE
  "liboptum_sim.a"
)
