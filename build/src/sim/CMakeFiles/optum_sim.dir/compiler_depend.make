# Empty compiler generated dependencies file for optum_sim.
# This may be replaced when dependencies are built.
