
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/predict/predictor_eval.cc" "src/predict/CMakeFiles/optum_predict.dir/predictor_eval.cc.o" "gcc" "src/predict/CMakeFiles/optum_predict.dir/predictor_eval.cc.o.d"
  "/root/repo/src/predict/usage_predictor.cc" "src/predict/CMakeFiles/optum_predict.dir/usage_predictor.cc.o" "gcc" "src/predict/CMakeFiles/optum_predict.dir/usage_predictor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/optum_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/optum_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/optum_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/optum_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
