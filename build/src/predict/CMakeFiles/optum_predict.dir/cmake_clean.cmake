file(REMOVE_RECURSE
  "CMakeFiles/optum_predict.dir/predictor_eval.cc.o"
  "CMakeFiles/optum_predict.dir/predictor_eval.cc.o.d"
  "CMakeFiles/optum_predict.dir/usage_predictor.cc.o"
  "CMakeFiles/optum_predict.dir/usage_predictor.cc.o.d"
  "liboptum_predict.a"
  "liboptum_predict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optum_predict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
