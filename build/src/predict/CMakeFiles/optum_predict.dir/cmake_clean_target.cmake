file(REMOVE_RECURSE
  "liboptum_predict.a"
)
