# Empty dependencies file for optum_predict.
# This may be replaced when dependencies are built.
