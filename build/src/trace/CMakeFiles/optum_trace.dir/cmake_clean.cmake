file(REMOVE_RECURSE
  "CMakeFiles/optum_trace.dir/app_model.cc.o"
  "CMakeFiles/optum_trace.dir/app_model.cc.o.d"
  "CMakeFiles/optum_trace.dir/scenarios.cc.o"
  "CMakeFiles/optum_trace.dir/scenarios.cc.o.d"
  "CMakeFiles/optum_trace.dir/trace_io.cc.o"
  "CMakeFiles/optum_trace.dir/trace_io.cc.o.d"
  "CMakeFiles/optum_trace.dir/trace_stats.cc.o"
  "CMakeFiles/optum_trace.dir/trace_stats.cc.o.d"
  "CMakeFiles/optum_trace.dir/workload_generator.cc.o"
  "CMakeFiles/optum_trace.dir/workload_generator.cc.o.d"
  "liboptum_trace.a"
  "liboptum_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optum_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
