file(REMOVE_RECURSE
  "liboptum_trace.a"
)
