# Empty dependencies file for optum_trace.
# This may be replaced when dependencies are built.
