file(REMOVE_RECURSE
  "CMakeFiles/optum_sched.dir/baselines.cc.o"
  "CMakeFiles/optum_sched.dir/baselines.cc.o.d"
  "CMakeFiles/optum_sched.dir/common.cc.o"
  "CMakeFiles/optum_sched.dir/common.cc.o.d"
  "CMakeFiles/optum_sched.dir/medea.cc.o"
  "CMakeFiles/optum_sched.dir/medea.cc.o.d"
  "liboptum_sched.a"
  "liboptum_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optum_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
