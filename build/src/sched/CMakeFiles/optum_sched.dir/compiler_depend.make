# Empty compiler generated dependencies file for optum_sched.
# This may be replaced when dependencies are built.
