file(REMOVE_RECURSE
  "liboptum_sched.a"
)
