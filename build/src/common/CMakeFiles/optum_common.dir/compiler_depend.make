# Empty compiler generated dependencies file for optum_common.
# This may be replaced when dependencies are built.
