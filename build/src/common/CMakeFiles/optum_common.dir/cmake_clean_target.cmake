file(REMOVE_RECURSE
  "liboptum_common.a"
)
