file(REMOVE_RECURSE
  "CMakeFiles/optum_common.dir/flags.cc.o"
  "CMakeFiles/optum_common.dir/flags.cc.o.d"
  "CMakeFiles/optum_common.dir/table_printer.cc.o"
  "CMakeFiles/optum_common.dir/table_printer.cc.o.d"
  "CMakeFiles/optum_common.dir/thread_pool.cc.o"
  "CMakeFiles/optum_common.dir/thread_pool.cc.o.d"
  "CMakeFiles/optum_common.dir/types.cc.o"
  "CMakeFiles/optum_common.dir/types.cc.o.d"
  "liboptum_common.a"
  "liboptum_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optum_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
