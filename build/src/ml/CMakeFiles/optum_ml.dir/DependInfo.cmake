
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/dataset.cc" "src/ml/CMakeFiles/optum_ml.dir/dataset.cc.o" "gcc" "src/ml/CMakeFiles/optum_ml.dir/dataset.cc.o.d"
  "/root/repo/src/ml/decision_tree.cc" "src/ml/CMakeFiles/optum_ml.dir/decision_tree.cc.o" "gcc" "src/ml/CMakeFiles/optum_ml.dir/decision_tree.cc.o.d"
  "/root/repo/src/ml/discretizer.cc" "src/ml/CMakeFiles/optum_ml.dir/discretizer.cc.o" "gcc" "src/ml/CMakeFiles/optum_ml.dir/discretizer.cc.o.d"
  "/root/repo/src/ml/gradient_boosting.cc" "src/ml/CMakeFiles/optum_ml.dir/gradient_boosting.cc.o" "gcc" "src/ml/CMakeFiles/optum_ml.dir/gradient_boosting.cc.o.d"
  "/root/repo/src/ml/linalg.cc" "src/ml/CMakeFiles/optum_ml.dir/linalg.cc.o" "gcc" "src/ml/CMakeFiles/optum_ml.dir/linalg.cc.o.d"
  "/root/repo/src/ml/linear.cc" "src/ml/CMakeFiles/optum_ml.dir/linear.cc.o" "gcc" "src/ml/CMakeFiles/optum_ml.dir/linear.cc.o.d"
  "/root/repo/src/ml/metrics.cc" "src/ml/CMakeFiles/optum_ml.dir/metrics.cc.o" "gcc" "src/ml/CMakeFiles/optum_ml.dir/metrics.cc.o.d"
  "/root/repo/src/ml/mlp.cc" "src/ml/CMakeFiles/optum_ml.dir/mlp.cc.o" "gcc" "src/ml/CMakeFiles/optum_ml.dir/mlp.cc.o.d"
  "/root/repo/src/ml/random_forest.cc" "src/ml/CMakeFiles/optum_ml.dir/random_forest.cc.o" "gcc" "src/ml/CMakeFiles/optum_ml.dir/random_forest.cc.o.d"
  "/root/repo/src/ml/regressor.cc" "src/ml/CMakeFiles/optum_ml.dir/regressor.cc.o" "gcc" "src/ml/CMakeFiles/optum_ml.dir/regressor.cc.o.d"
  "/root/repo/src/ml/svr.cc" "src/ml/CMakeFiles/optum_ml.dir/svr.cc.o" "gcc" "src/ml/CMakeFiles/optum_ml.dir/svr.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/optum_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/optum_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
