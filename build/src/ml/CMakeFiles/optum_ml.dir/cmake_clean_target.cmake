file(REMOVE_RECURSE
  "liboptum_ml.a"
)
