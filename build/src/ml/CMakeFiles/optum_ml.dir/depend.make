# Empty dependencies file for optum_ml.
# This may be replaced when dependencies are built.
