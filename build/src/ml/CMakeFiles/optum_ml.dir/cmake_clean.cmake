file(REMOVE_RECURSE
  "CMakeFiles/optum_ml.dir/dataset.cc.o"
  "CMakeFiles/optum_ml.dir/dataset.cc.o.d"
  "CMakeFiles/optum_ml.dir/decision_tree.cc.o"
  "CMakeFiles/optum_ml.dir/decision_tree.cc.o.d"
  "CMakeFiles/optum_ml.dir/discretizer.cc.o"
  "CMakeFiles/optum_ml.dir/discretizer.cc.o.d"
  "CMakeFiles/optum_ml.dir/gradient_boosting.cc.o"
  "CMakeFiles/optum_ml.dir/gradient_boosting.cc.o.d"
  "CMakeFiles/optum_ml.dir/linalg.cc.o"
  "CMakeFiles/optum_ml.dir/linalg.cc.o.d"
  "CMakeFiles/optum_ml.dir/linear.cc.o"
  "CMakeFiles/optum_ml.dir/linear.cc.o.d"
  "CMakeFiles/optum_ml.dir/metrics.cc.o"
  "CMakeFiles/optum_ml.dir/metrics.cc.o.d"
  "CMakeFiles/optum_ml.dir/mlp.cc.o"
  "CMakeFiles/optum_ml.dir/mlp.cc.o.d"
  "CMakeFiles/optum_ml.dir/random_forest.cc.o"
  "CMakeFiles/optum_ml.dir/random_forest.cc.o.d"
  "CMakeFiles/optum_ml.dir/regressor.cc.o"
  "CMakeFiles/optum_ml.dir/regressor.cc.o.d"
  "CMakeFiles/optum_ml.dir/svr.cc.o"
  "CMakeFiles/optum_ml.dir/svr.cc.o.d"
  "liboptum_ml.a"
  "liboptum_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optum_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
