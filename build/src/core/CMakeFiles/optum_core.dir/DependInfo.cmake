
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/deployment.cc" "src/core/CMakeFiles/optum_core.dir/deployment.cc.o" "gcc" "src/core/CMakeFiles/optum_core.dir/deployment.cc.o.d"
  "/root/repo/src/core/distributed.cc" "src/core/CMakeFiles/optum_core.dir/distributed.cc.o" "gcc" "src/core/CMakeFiles/optum_core.dir/distributed.cc.o.d"
  "/root/repo/src/core/ero_table.cc" "src/core/CMakeFiles/optum_core.dir/ero_table.cc.o" "gcc" "src/core/CMakeFiles/optum_core.dir/ero_table.cc.o.d"
  "/root/repo/src/core/interference_predictor.cc" "src/core/CMakeFiles/optum_core.dir/interference_predictor.cc.o" "gcc" "src/core/CMakeFiles/optum_core.dir/interference_predictor.cc.o.d"
  "/root/repo/src/core/offline_profiler.cc" "src/core/CMakeFiles/optum_core.dir/offline_profiler.cc.o" "gcc" "src/core/CMakeFiles/optum_core.dir/offline_profiler.cc.o.d"
  "/root/repo/src/core/optum_scheduler.cc" "src/core/CMakeFiles/optum_core.dir/optum_scheduler.cc.o" "gcc" "src/core/CMakeFiles/optum_core.dir/optum_scheduler.cc.o.d"
  "/root/repo/src/core/optum_system.cc" "src/core/CMakeFiles/optum_core.dir/optum_system.cc.o" "gcc" "src/core/CMakeFiles/optum_core.dir/optum_system.cc.o.d"
  "/root/repo/src/core/resource_usage_predictor.cc" "src/core/CMakeFiles/optum_core.dir/resource_usage_predictor.cc.o" "gcc" "src/core/CMakeFiles/optum_core.dir/resource_usage_predictor.cc.o.d"
  "/root/repo/src/core/tracing_coordinator.cc" "src/core/CMakeFiles/optum_core.dir/tracing_coordinator.cc.o" "gcc" "src/core/CMakeFiles/optum_core.dir/tracing_coordinator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/optum_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/optum_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/predict/CMakeFiles/optum_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/optum_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/optum_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/optum_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/optum_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/optum_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
