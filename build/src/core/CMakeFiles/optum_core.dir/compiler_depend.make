# Empty compiler generated dependencies file for optum_core.
# This may be replaced when dependencies are built.
