file(REMOVE_RECURSE
  "CMakeFiles/optum_core.dir/deployment.cc.o"
  "CMakeFiles/optum_core.dir/deployment.cc.o.d"
  "CMakeFiles/optum_core.dir/distributed.cc.o"
  "CMakeFiles/optum_core.dir/distributed.cc.o.d"
  "CMakeFiles/optum_core.dir/ero_table.cc.o"
  "CMakeFiles/optum_core.dir/ero_table.cc.o.d"
  "CMakeFiles/optum_core.dir/interference_predictor.cc.o"
  "CMakeFiles/optum_core.dir/interference_predictor.cc.o.d"
  "CMakeFiles/optum_core.dir/offline_profiler.cc.o"
  "CMakeFiles/optum_core.dir/offline_profiler.cc.o.d"
  "CMakeFiles/optum_core.dir/optum_scheduler.cc.o"
  "CMakeFiles/optum_core.dir/optum_scheduler.cc.o.d"
  "CMakeFiles/optum_core.dir/optum_system.cc.o"
  "CMakeFiles/optum_core.dir/optum_system.cc.o.d"
  "CMakeFiles/optum_core.dir/resource_usage_predictor.cc.o"
  "CMakeFiles/optum_core.dir/resource_usage_predictor.cc.o.d"
  "CMakeFiles/optum_core.dir/tracing_coordinator.cc.o"
  "CMakeFiles/optum_core.dir/tracing_coordinator.cc.o.d"
  "liboptum_core.a"
  "liboptum_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optum_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
