file(REMOVE_RECURSE
  "liboptum_core.a"
)
