# Empty compiler generated dependencies file for distributed_schedulers.
# This may be replaced when dependencies are built.
