file(REMOVE_RECURSE
  "CMakeFiles/distributed_schedulers.dir/distributed_schedulers.cpp.o"
  "CMakeFiles/distributed_schedulers.dir/distributed_schedulers.cpp.o.d"
  "distributed_schedulers"
  "distributed_schedulers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_schedulers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
