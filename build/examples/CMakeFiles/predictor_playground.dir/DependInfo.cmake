
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/predictor_playground.cpp" "examples/CMakeFiles/predictor_playground.dir/predictor_playground.cpp.o" "gcc" "examples/CMakeFiles/predictor_playground.dir/predictor_playground.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/optum_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/optum_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/predict/CMakeFiles/optum_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/optum_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/optum_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/optum_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/optum_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/optum_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/optum_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
