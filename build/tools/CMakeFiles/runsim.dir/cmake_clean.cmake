file(REMOVE_RECURSE
  "CMakeFiles/runsim.dir/runsim.cc.o"
  "CMakeFiles/runsim.dir/runsim.cc.o.d"
  "runsim"
  "runsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
