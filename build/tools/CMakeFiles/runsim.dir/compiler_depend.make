# Empty compiler generated dependencies file for runsim.
# This may be replaced when dependencies are built.
