// series_plot: renders an optum.series.v1 JSONL export (`runsim
// --series-json`) as a terminal chart or an SVG polyline.
//
// Usage:
//   series_plot series.jsonl                  # list available columns
//   series_plot --col sim.pending_pods series.jsonl
//   series_plot --col sim.avg_cpu_util_nonidle --svg out.svg series.jsonl
//
// Columns are gauge names from the header'd JSONL stream; gauges that
// appear mid-run simply have shorter series. Exit codes: 0 ok, 1 I/O or
// unknown column, 2 usage/parse error.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "src/common/flags.h"
#include "src/obs/json_reader.h"
#include "src/obs/schema.h"

using optum::obs::JsonValue;

namespace {

struct Series {
  std::vector<int64_t> ticks;
  std::vector<double> values;
};

// Loads one column from the JSONL stream; `columns` collects every gauge
// name seen (with sample counts) for the no-column listing.
bool LoadSeries(const std::string& path, const std::string& column,
                Series* series,
                std::vector<std::pair<std::string, int64_t>>* columns) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "series_plot: cannot open %s\n", path.c_str());
    return false;
  }
  std::string line;
  bool saw_header = false;
  char buf[1 << 16];
  std::string pending;
  while (std::fgets(buf, sizeof(buf), f) != nullptr) {
    pending += buf;
    if (pending.empty() || pending.back() != '\n') {
      continue;  // long line split across fgets calls
    }
    line.swap(pending);
    pending.clear();
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
      line.pop_back();
    }
    if (line.empty()) {
      continue;
    }
    JsonValue doc;
    std::string error;
    if (!optum::obs::ParseJson(line, &doc, &error)) {
      std::fprintf(stderr, "series_plot: %s: %s\n", path.c_str(), error.c_str());
      std::fclose(f);
      return false;
    }
    if (!saw_header) {
      const JsonValue* schema = doc.Find("schema");
      if (schema == nullptr || !schema->is_string() ||
          schema->string_value != optum::obs::kSeriesSchema) {
        std::fprintf(stderr, "series_plot: %s is not an %s stream\n",
                     path.c_str(), optum::obs::kSeriesSchema);
        std::fclose(f);
        return false;
      }
      saw_header = true;
      continue;
    }
    const JsonValue* tick = doc.Find("tick");
    const JsonValue* gauges = doc.Find("gauges");
    if (tick == nullptr || gauges == nullptr || !gauges->is_object()) {
      continue;
    }
    for (const auto& [name, value] : gauges->members) {
      auto it = std::find_if(columns->begin(), columns->end(),
                             [&](const auto& c) { return c.first == name; });
      if (it == columns->end()) {
        columns->emplace_back(name, 1);
      } else {
        ++it->second;
      }
      if (name == column && value.is_number()) {
        series->ticks.push_back(tick->AsInt());
        series->values.push_back(value.number);
      }
    }
  }
  std::fclose(f);
  if (!saw_header) {
    std::fprintf(stderr, "series_plot: %s is empty\n", path.c_str());
    return false;
  }
  return true;
}

void RenderTerminal(const std::string& column, const Series& s, int width,
                    int height) {
  double lo = s.values[0], hi = s.values[0];
  for (const double v : s.values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  if (hi - lo < 1e-12) {
    hi = lo + 1.0;  // flat series still renders as a line
  }
  // Downsample into `width` buckets by mean.
  std::vector<double> cols(static_cast<size_t>(width), 0.0);
  std::vector<int> counts(static_cast<size_t>(width), 0);
  for (size_t i = 0; i < s.values.size(); ++i) {
    const size_t c = std::min<size_t>(
        static_cast<size_t>(width) - 1,
        i * static_cast<size_t>(width) / s.values.size());
    cols[c] += s.values[i];
    ++counts[c];
  }
  std::printf("%s  (%zu samples, ticks %lld..%lld, min %.6g, max %.6g)\n",
              column.c_str(), s.values.size(),
              static_cast<long long>(s.ticks.front()),
              static_cast<long long>(s.ticks.back()), lo, hi);
  for (int row = height - 1; row >= 0; --row) {
    const double row_lo = lo + (hi - lo) * row / height;
    std::string line;
    for (int c = 0; c < width; ++c) {
      if (counts[static_cast<size_t>(c)] == 0) {
        line.push_back(' ');
        continue;
      }
      const double v =
          cols[static_cast<size_t>(c)] / counts[static_cast<size_t>(c)];
      line.push_back(v >= row_lo ? '#' : ' ');
    }
    std::printf("%10.4g |%s\n", row_lo, line.c_str());
  }
  std::printf("%10s +%s\n", "", std::string(static_cast<size_t>(width), '-').c_str());
}

bool RenderSvg(const std::string& path, const std::string& column,
               const Series& s, int width, int height) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "series_plot: cannot open %s for writing\n",
                 path.c_str());
    return false;
  }
  double lo = s.values[0], hi = s.values[0];
  for (const double v : s.values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  if (hi - lo < 1e-12) {
    hi = lo + 1.0;
  }
  const int margin = 40;
  std::fprintf(f,
               "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" "
               "height=\"%d\" viewBox=\"0 0 %d %d\">\n",
               width + 2 * margin, height + 2 * margin, width + 2 * margin,
               height + 2 * margin);
  std::fprintf(f,
               "<text x=\"%d\" y=\"20\" font-family=\"monospace\" "
               "font-size=\"13\">%s  [%.6g .. %.6g]</text>\n",
               margin, column.c_str(), lo, hi);
  std::fprintf(f,
               "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" "
               "fill=\"none\" stroke=\"#999\"/>\n",
               margin, margin, width, height);
  std::fprintf(f, "<polyline fill=\"none\" stroke=\"#1f77b4\" "
                  "stroke-width=\"1.5\" points=\"");
  const int64_t t0 = s.ticks.front();
  const int64_t t1 = std::max(s.ticks.back(), t0 + 1);
  for (size_t i = 0; i < s.values.size(); ++i) {
    const double x =
        margin + static_cast<double>(s.ticks[i] - t0) /
                     static_cast<double>(t1 - t0) * width;
    const double y = margin + height - (s.values[i] - lo) / (hi - lo) * height;
    std::fprintf(f, "%.1f,%.1f ", x, y);
  }
  std::fprintf(f, "\"/>\n</svg>\n");
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  optum::FlagParser flags;
  if (!flags.Parse(argc, argv) || flags.positional().size() != 1) {
    std::fprintf(stderr,
                 "usage: series_plot [--col GAUGE] [--svg OUT.svg] "
                 "[--width N] [--height N] series.jsonl\n");
    return 2;
  }
  const std::string column = flags.GetString("col", "");
  const std::string svg = flags.GetString("svg", "");
  const int width = static_cast<int>(flags.GetInt("width", 72));
  const int height = static_cast<int>(flags.GetInt("height", 16));

  Series series;
  std::vector<std::pair<std::string, int64_t>> columns;
  if (!LoadSeries(flags.positional()[0], column, &series, &columns)) {
    return 1;
  }

  if (column.empty()) {
    std::printf("columns in %s:\n", flags.positional()[0].c_str());
    for (const auto& [name, count] : columns) {
      std::printf("  %-40s %lld samples\n", name.c_str(),
                  static_cast<long long>(count));
    }
    std::printf("pick one with --col GAUGE\n");
    return 0;
  }
  if (series.values.empty()) {
    std::fprintf(stderr, "series_plot: no samples for column %s\n",
                 column.c_str());
    return 1;
  }
  if (!svg.empty()) {
    if (!RenderSvg(svg, column, series, std::max(width * 8, 320),
                   std::max(height * 12, 160))) {
      return 1;
    }
    std::printf("wrote %s (%zu samples)\n", svg.c_str(), series.values.size());
    return 0;
  }
  RenderTerminal(column, series, width, height);
  return 0;
}
