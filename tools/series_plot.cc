// series_plot: renders an optum.series.v1 JSONL export (`runsim
// --series-json`, `serve_bench --series-json`) as a terminal chart or an
// SVG polyline. Repeating --col (or giving a comma-separated list) overlays
// the columns in one chart on a shared value axis — pressure vs.
// utilization side-by-side is the canonical use.
//
// Usage:
//   series_plot series.jsonl                  # list available columns
//   series_plot --col sim.pending_pods series.jsonl
//   series_plot --col serve.pressure.mean --col serve.pressure.max \
//               --svg out.svg series.jsonl
//
// Columns are gauge names from the header'd JSONL stream; gauges that
// appear mid-run simply have shorter series. Exit codes: 0 ok, 1 I/O or
// unknown column, 2 usage/parse error.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "src/common/flags.h"
#include "src/obs/json_reader.h"
#include "src/obs/schema.h"

using optum::obs::JsonValue;

namespace {

struct Series {
  std::string column;
  std::vector<int64_t> ticks;
  std::vector<double> values;
};

// Overlay glyphs (terminal) and stroke colors (SVG), by series index.
constexpr char kGlyphs[] = {'#', '*', '+', 'o', 'x', '@'};
constexpr const char* kColors[] = {"#1f77b4", "#d62728", "#2ca02c",
                                   "#9467bd", "#ff7f0e", "#8c564b"};
constexpr size_t kMaxOverlay = sizeof(kGlyphs) / sizeof(kGlyphs[0]);

// Loads the requested columns from the JSONL stream in one pass; `columns`
// collects every gauge name seen (with sample counts) for the no-column
// listing. ForEachJsonlRow processes the final line even without a trailing
// newline, so a truncated export is a loud parse error rather than a
// silently shortened series.
bool LoadSeries(const std::string& path, std::vector<Series>* series,
                std::vector<std::pair<std::string, int64_t>>* columns) {
  optum::obs::JsonlReadStats stats;
  const std::string err = optum::obs::ForEachJsonlRow(
      path, optum::obs::kSeriesSchema,
      [&](const JsonValue& doc) {
        const JsonValue* tick = doc.Find("tick");
        const JsonValue* gauges = doc.Find("gauges");
        if (tick == nullptr || gauges == nullptr || !gauges->is_object()) {
          return;
        }
        for (const auto& [name, value] : gauges->members) {
          auto it = std::find_if(columns->begin(), columns->end(),
                                 [&](const auto& c) { return c.first == name; });
          if (it == columns->end()) {
            columns->emplace_back(name, 1);
          } else {
            ++it->second;
          }
          if (!value.is_number()) {
            continue;
          }
          for (Series& s : *series) {
            if (name == s.column) {
              s.ticks.push_back(tick->AsInt());
              s.values.push_back(value.number);
            }
          }
        }
      },
      &stats);
  if (!err.empty()) {
    std::fprintf(stderr, "series_plot: %s\n", err.c_str());
    return false;
  }
  if (stats.data_rows == 0) {
    std::fprintf(stderr, "series_plot: no series rows in %s\n", path.c_str());
    return false;
  }
  return true;
}

// Shared [lo, hi] across every overlaid series, so the chart has one axis.
void ValueRange(const std::vector<Series>& series, double* lo, double* hi) {
  *lo = series[0].values[0];
  *hi = series[0].values[0];
  for (const Series& s : series) {
    for (const double v : s.values) {
      *lo = std::min(*lo, v);
      *hi = std::max(*hi, v);
    }
  }
  if (*hi - *lo < 1e-12) {
    *hi = *lo + 1.0;  // flat series still renders as a line
  }
}

void RenderTerminal(const std::vector<Series>& series, int width, int height) {
  double lo, hi;
  ValueRange(series, &lo, &hi);
  for (size_t k = 0; k < series.size(); ++k) {
    const Series& s = series[k];
    std::printf("%c %s  (%zu samples, ticks %lld..%lld)\n", kGlyphs[k],
                s.column.c_str(), s.values.size(),
                static_cast<long long>(s.ticks.front()),
                static_cast<long long>(s.ticks.back()));
  }
  std::printf("shared axis [%.6g .. %.6g]\n", lo, hi);
  // Downsample each series into `width` buckets by mean.
  std::vector<std::vector<double>> cols(series.size());
  std::vector<std::vector<int>> counts(series.size());
  for (size_t k = 0; k < series.size(); ++k) {
    cols[k].assign(static_cast<size_t>(width), 0.0);
    counts[k].assign(static_cast<size_t>(width), 0);
    const Series& s = series[k];
    for (size_t i = 0; i < s.values.size(); ++i) {
      const size_t c = std::min<size_t>(
          static_cast<size_t>(width) - 1,
          i * static_cast<size_t>(width) / s.values.size());
      cols[k][c] += s.values[i];
      ++counts[k][c];
    }
  }
  for (int row = height - 1; row >= 0; --row) {
    const double row_lo = lo + (hi - lo) * row / height;
    std::string line(static_cast<size_t>(width), ' ');
    // Later series overdraw earlier ones where they overlap.
    for (size_t k = 0; k < series.size(); ++k) {
      for (int c = 0; c < width; ++c) {
        if (counts[k][static_cast<size_t>(c)] == 0) {
          continue;
        }
        const double v = cols[k][static_cast<size_t>(c)] /
                         counts[k][static_cast<size_t>(c)];
        if (v >= row_lo) {
          line[static_cast<size_t>(c)] = kGlyphs[k];
        }
      }
    }
    std::printf("%10.4g |%s\n", row_lo, line.c_str());
  }
  std::printf("%10s +%s\n", "", std::string(static_cast<size_t>(width), '-').c_str());
}

bool RenderSvg(const std::string& path, const std::vector<Series>& series,
               int width, int height) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "series_plot: cannot open %s for writing\n",
                 path.c_str());
    return false;
  }
  double lo, hi;
  ValueRange(series, &lo, &hi);
  const int margin = 40;
  const int legend = 16 * static_cast<int>(series.size());
  std::fprintf(f,
               "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" "
               "height=\"%d\" viewBox=\"0 0 %d %d\">\n",
               width + 2 * margin, height + 2 * margin + legend,
               width + 2 * margin, height + 2 * margin + legend);
  for (size_t k = 0; k < series.size(); ++k) {
    std::fprintf(f,
                 "<text x=\"%d\" y=\"%d\" font-family=\"monospace\" "
                 "font-size=\"13\" fill=\"%s\">%s</text>\n",
                 margin, 20 + 16 * static_cast<int>(k), kColors[k],
                 series[k].column.c_str());
  }
  std::fprintf(f,
               "<text x=\"%d\" y=\"%d\" font-family=\"monospace\" "
               "font-size=\"11\">[%.6g .. %.6g]</text>\n",
               margin, 14 + legend, lo, hi);
  std::fprintf(f,
               "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" "
               "fill=\"none\" stroke=\"#999\"/>\n",
               margin, margin + legend, width, height);
  for (size_t k = 0; k < series.size(); ++k) {
    const Series& s = series[k];
    std::fprintf(f,
                 "<polyline fill=\"none\" stroke=\"%s\" "
                 "stroke-width=\"1.5\" points=\"",
                 kColors[k]);
    const int64_t t0 = s.ticks.front();
    const int64_t t1 = std::max(s.ticks.back(), t0 + 1);
    for (size_t i = 0; i < s.values.size(); ++i) {
      const double x =
          margin + static_cast<double>(s.ticks[i] - t0) /
                       static_cast<double>(t1 - t0) * width;
      const double y =
          margin + legend + height - (s.values[i] - lo) / (hi - lo) * height;
      std::fprintf(f, "%.1f,%.1f ", x, y);
    }
    std::fprintf(f, "\"/>\n");
  }
  std::fprintf(f, "</svg>\n");
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  optum::FlagParser flags;
  if (!flags.Parse(argc, argv) || flags.positional().size() != 1) {
    std::fprintf(stderr,
                 "usage: series_plot [--col GAUGE]... [--svg OUT.svg] "
                 "[--width N] [--height N] series.jsonl\n");
    return 2;
  }
  const std::vector<std::string> wanted = flags.GetStringList("col");
  const std::string svg = flags.GetString("svg", "");
  const int width = static_cast<int>(flags.GetInt("width", 72));
  const int height = static_cast<int>(flags.GetInt("height", 16));
  if (wanted.size() > kMaxOverlay) {
    std::fprintf(stderr, "series_plot: at most %zu overlaid columns\n",
                 kMaxOverlay);
    return 2;
  }

  std::vector<Series> series;
  for (const std::string& column : wanted) {
    series.push_back(Series{column, {}, {}});
  }
  std::vector<std::pair<std::string, int64_t>> columns;
  if (!LoadSeries(flags.positional()[0], &series, &columns)) {
    return 1;
  }

  if (series.empty()) {
    std::printf("columns in %s:\n", flags.positional()[0].c_str());
    for (const auto& [name, count] : columns) {
      std::printf("  %-40s %lld samples\n", name.c_str(),
                  static_cast<long long>(count));
    }
    std::printf("pick one or more with --col GAUGE\n");
    return 0;
  }
  size_t total_samples = 0;
  for (const Series& s : series) {
    if (s.values.empty()) {
      std::fprintf(stderr, "series_plot: no samples for column %s\n",
                   s.column.c_str());
      return 1;
    }
    total_samples += s.values.size();
  }
  if (!svg.empty()) {
    if (!RenderSvg(svg, series, std::max(width * 8, 320),
                   std::max(height * 12, 160))) {
      return 1;
    }
    std::printf("wrote %s (%zu samples)\n", svg.c_str(), total_samples);
    return 0;
  }
  RenderTerminal(series, width, height);
  return 0;
}
