#!/usr/bin/env bash
# Builds the sanitizer presets and runs the `concurrency`- and
# `observability`-labeled ctest subsets under each — the
# thread-count-invariance, lane-sharded cache, host-baseline stress, and
# metrics-registry tests that guard the parallel scoring path and the
# lane-sharded metric shards.
#
#   tools/sanitize_runner.sh [tsan|asan-ubsan|all]   (default: all)
#
# Only the test targets carrying the `concurrency` label (plus their library
# deps) are built, which keeps a sanitizer pass to a few minutes. See
# DESIGN.md §8 for what each sanitizer is expected to catch.
set -euo pipefail
cd "$(dirname "$0")/.."

CONCURRENCY_TARGETS=(concurrency_test cache_property_test sample_hosts_test
                     perf_equivalence_test sim_property_test obs_test
                     span_timeseries_test compiled_forest_test
                     forest_quantized_test serve_test serve_pipeline_test
                     latency_percentile_test pressure_slo_test profiler_test)

# Guard: every test registered in tests/CMakeLists.txt with a concurrency or
# observability label must be in CONCURRENCY_TARGETS, or the sanitizer pass
# would silently skip building (and therefore running) it. Fail loudly with
# the missing names instead.
check_label_coverage() {
  local missing=()
  local labeled
  labeled="$(sed -n \
    's/^optum_add_test(\([a-z0-9_]*\) LABELS \(concurrency\|observability\)).*/\1/p' \
    tests/CMakeLists.txt)"
  for test in ${labeled}; do
    local found=0
    for target in "${CONCURRENCY_TARGETS[@]}"; do
      [[ "${test}" == "${target}" ]] && found=1 && break
    done
    [[ "${found}" == 0 ]] && missing+=("${test}")
  done
  if [[ "${#missing[@]}" -gt 0 ]]; then
    echo "sanitize_runner: tests labeled concurrency/observability but missing" >&2
    echo "from CONCURRENCY_TARGETS (they would never run under sanitizers):" >&2
    printf '  %s\n' "${missing[@]}" >&2
    exit 1
  fi
}
check_label_coverage

run_preset() {
  local preset="$1"
  echo "=== [${preset}] configure + build concurrency test targets ==="
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j "$(nproc)" \
    $(printf -- '--target %s ' "${CONCURRENCY_TARGETS[@]}")
  echo "=== [${preset}] ctest -L 'concurrency|observability' ==="
  ctest --preset "${preset}" -j "$(nproc)"
}

mode="${1:-all}"
case "${mode}" in
  tsan)       run_preset tsan ;;
  asan-ubsan) run_preset asan-ubsan ;;
  all)        run_preset tsan; run_preset asan-ubsan ;;
  *) echo "usage: $0 [tsan|asan-ubsan|all]" >&2; exit 2 ;;
esac
echo "sanitize_runner: all requested sanitizer passes clean"
