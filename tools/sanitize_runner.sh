#!/usr/bin/env bash
# Builds the sanitizer presets and runs the `concurrency`- and
# `observability`-labeled ctest subsets under each — the
# thread-count-invariance, lane-sharded cache, host-baseline stress, and
# metrics-registry tests that guard the parallel scoring path and the
# lane-sharded metric shards.
#
#   tools/sanitize_runner.sh [tsan|asan-ubsan|all]   (default: all)
#
# Only the test targets carrying the `concurrency` label (plus their library
# deps) are built, which keeps a sanitizer pass to a few minutes. See
# DESIGN.md §8 for what each sanitizer is expected to catch.
set -euo pipefail
cd "$(dirname "$0")/.."

CONCURRENCY_TARGETS=(concurrency_test cache_property_test sample_hosts_test
                     perf_equivalence_test sim_property_test obs_test
                     span_timeseries_test compiled_forest_test
                     forest_quantized_test)

run_preset() {
  local preset="$1"
  echo "=== [${preset}] configure + build concurrency test targets ==="
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j "$(nproc)" \
    $(printf -- '--target %s ' "${CONCURRENCY_TARGETS[@]}")
  echo "=== [${preset}] ctest -L 'concurrency|observability' ==="
  ctest --preset "${preset}" -j "$(nproc)"
}

mode="${1:-all}"
case "${mode}" in
  tsan)       run_preset tsan ;;
  asan-ubsan) run_preset asan-ubsan ;;
  all)        run_preset tsan; run_preset asan-ubsan ;;
  *) echo "usage: $0 [tsan|asan-ubsan|all]" >&2; exit 2 ;;
esac
echo "sanitize_runner: all requested sanitizer passes clean"
