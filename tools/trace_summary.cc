// trace_summary: loads a trace-bundle directory (the CSV layout written by
// WriteTraceBundle / the simulator) and prints a characterization report —
// per-class inventory, host utilization, and waiting-time quantiles.
//
// Usage:
//   trace_summary <trace_dir>
//   trace_summary --json <trace_dir>       # machine-readable summary
//   trace_summary --generate <trace_dir>   # synthesize a demo trace first
#include <cstdio>

#include "src/common/flags.h"
#include "src/obs/json_writer.h"
#include "src/sched/baselines.h"
#include "src/sim/simulator.h"
#include "src/trace/trace_io.h"
#include "src/trace/trace_stats.h"
#include "src/trace/workload_generator.h"

using namespace optum;

int main(int argc, char** argv) {
  FlagParser flags;
  if (!flags.Parse(argc, argv) || flags.positional().size() != 1) {
    std::fprintf(
        stderr,
        "usage: trace_summary [--generate] [--json] [--json-out F] [--hosts N] "
        "[--hours H] <trace_dir>\n");
    return 2;
  }
  const std::string dir = flags.positional()[0];

  if (flags.GetBool("generate", false)) {
    WorkloadConfig config;
    config.num_hosts = static_cast<int>(flags.GetInt("hosts", 48));
    config.horizon = flags.GetInt("hours", 6) * kTicksPerHour;
    config.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
    const Workload workload = WorkloadGenerator(config).Generate();
    AlibabaBaseline scheduler;
    SimConfig sim_config;
    sim_config.pod_usage_period = 5;
    const SimResult result = Simulator(workload, sim_config, scheduler).Run();
    if (!WriteTraceBundle(result.trace, dir)) {
      std::fprintf(stderr, "failed to write trace to %s\n", dir.c_str());
      return 1;
    }
    if (!flags.GetBool("json", false)) {
      std::printf("generated demo trace in %s\n\n", dir.c_str());
    }
  }

  TraceBundle trace;
  if (!ReadTraceBundle(dir, &trace)) {
    std::fprintf(stderr, "failed to load trace bundle from %s\n", dir.c_str());
    return 1;
  }

  const TraceSummary summary = Summarize(trace);
  const std::string json_out_path = flags.GetString("json-out", "");
  if (!json_out_path.empty()) {
    // Shared checked sink (schema optum.summary.v1, as with --json).
    return obs::WriteJsonDocument(json_out_path, RenderSummaryJson(summary)) ? 0 : 1;
  }
  if (flags.GetBool("json", false)) {
    // Same export code path as `runsim --json` (schema optum.summary.v1).
    std::printf("%s\n", RenderSummaryJson(summary).c_str());
    return 0;
  }
  std::fputs(RenderSummary(summary).c_str(), stdout);

  std::printf("\nwaiting time quantiles (s):\n");
  for (const SloClass slo : {SloClass::kBe, SloClass::kLs, SloClass::kLsr}) {
    const EmpiricalCdf cdf = WaitingTimeCdf(trace, slo);
    if (cdf.empty()) {
      continue;
    }
    std::printf("  %-4s p50=%-8.4g p90=%-8.4g p99=%-8.4g max=%.4g\n", ToString(slo),
                cdf.ValueAtPercentile(50), cdf.ValueAtPercentile(90),
                cdf.ValueAtPercentile(99), cdf.max());
  }
  return 0;
}
