// profile_report: renders an optum.profile.v1 phase-profile export
// (`serve_bench --profile-json`, `runsim --profile-json`) as a per-phase
// wall-time table plus the top-k critical-path offenders. The wall is
// reconstructed as barrier_ns (the measured Submit..Wait wall) plus the
// serial phases (ingest_wait, resolve, commit, pressure_sweep); the barrier
// phases and idle are normalized onto the barrier wall so the attributed
// column sums to the reconstruction even when shard lanes overlap.
//
// Usage:
//   profile_report profile.jsonl [--top N] [--diff other.jsonl]
//
// --diff prints per-phase total/avg deltas of `other` relative to the
// primary profile (baseline first, candidate under --diff).
//
// Exit codes: 0 ok, 1 I/O / schema / empty-profile error, 2 usage error.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/common/flags.h"
#include "src/obs/json_reader.h"
#include "src/obs/profiler.h"
#include "src/obs/schema.h"

using optum::obs::JsonValue;

namespace {

constexpr size_t kNumPhases = optum::obs::kNumProfilePhases;

const char* PhaseName(size_t p) {
  return optum::obs::ProfilePhaseName(
      static_cast<optum::obs::ProfilePhase>(p));
}

int PhaseIndex(const std::string& name) {
  for (size_t p = 0; p < kNumPhases; ++p) {
    if (name == PhaseName(p)) {
      return static_cast<int>(p);
    }
  }
  return -1;
}

struct PhaseTotals {
  int64_t count = 0;
  int64_t total_ns = 0;
  int64_t max_ns = 0;
};

struct CpTotals {
  int64_t rounds_bound = 0;
  int64_t bound_ns = 0;
  int64_t idle_ns = 0;
};

// One parsed profile: everything the table and the diff need.
struct Profile {
  int64_t windows = 0;
  int64_t rounds = 0;
  int64_t shards = 0;      // max over window rows
  int64_t barrier_ns = 0;  // summed barrier wall
  PhaseTotals phases[optum::obs::kNumProfilePhases];
  std::map<std::pair<int64_t, int64_t>, CpTotals> cp;  // (shard, phase)
  int64_t cp_windows = 0;  // windows with at least one critical-path row

  // Serial phases run outside the barrier; barrier phases and idle are
  // alternative attributions of the barrier wall itself.
  int64_t SerialNs() const {
    using optum::obs::ProfilePhase;
    int64_t serial = 0;
    for (size_t p = 0; p < kNumPhases; ++p) {
      const auto phase = static_cast<ProfilePhase>(p);
      if (!optum::obs::IsBarrierPhase(phase) && phase != ProfilePhase::kIdle) {
        serial += phases[p].total_ns;
      }
    }
    return serial;
  }
  int64_t WallNs() const { return barrier_ns + SerialNs(); }
  // Summed lane-time inside the barrier (busy + idle); the normalization
  // base for attributing the barrier wall across barrier phases and idle.
  int64_t BarrierLaneNs() const {
    using optum::obs::ProfilePhase;
    int64_t lane = 0;
    for (size_t p = 0; p < kNumPhases; ++p) {
      const auto phase = static_cast<ProfilePhase>(p);
      if (optum::obs::IsBarrierPhase(phase) || phase == ProfilePhase::kIdle) {
        lane += phases[p].total_ns;
      }
    }
    return lane;
  }
};

// Loads one optum.profile.v1 file; returns false after printing a one-line
// error. Row kinds are distinguished by key presence, matching ProfileLog's
// renderers: "cp_shard" → critical path, "shard" → phase, otherwise window.
bool LoadProfile(const std::string& path, Profile* out) {
  int64_t last_window = -1;
  bool bad_phase = false;
  const std::string err = optum::obs::ForEachJsonlRow(
      path, optum::obs::kProfileSchema, [&](const JsonValue& row) {
        auto get = [&row](const char* key) {
          const JsonValue* v = row.Find(key);
          return v != nullptr ? v->AsInt() : int64_t{0};
        };
        if (const JsonValue* cp_shard = row.Find("cp_shard");
            cp_shard != nullptr) {
          const JsonValue* name = row.Find("cp_phase");
          const int p = name != nullptr && name->is_string()
                            ? PhaseIndex(name->string_value)
                            : -1;
          if (p < 0) {
            bad_phase = true;
            return;
          }
          CpTotals& cp = out->cp[{cp_shard->AsInt(), p}];
          cp.rounds_bound += get("rounds_bound");
          cp.bound_ns += get("bound_ns");
          cp.idle_ns += get("idle_ns");
          if (get("window") != last_window || out->cp_windows == 0) {
            last_window = get("window");
            ++out->cp_windows;
          }
          return;
        }
        if (row.Find("shard") != nullptr) {
          const JsonValue* name = row.Find("phase");
          const int p = name != nullptr && name->is_string()
                            ? PhaseIndex(name->string_value)
                            : -1;
          if (p < 0) {
            bad_phase = true;
            return;
          }
          PhaseTotals& t = out->phases[p];
          t.count += get("count");
          t.total_ns += get("total_ns");
          t.max_ns = std::max(t.max_ns, get("max_ns"));
          return;
        }
        ++out->windows;
        out->rounds += get("rounds");
        out->shards = std::max(out->shards, get("shards"));
        out->barrier_ns += get("barrier_ns");
      });
  if (!err.empty()) {
    std::fprintf(stderr, "profile_report: %s\n", err.c_str());
    return false;
  }
  if (bad_phase) {
    std::fprintf(stderr, "profile_report: %s has rows with unknown phases\n",
                 path.c_str());
    return false;
  }
  if (out->windows == 0) {
    std::fprintf(stderr, "profile_report: no profile windows in %s\n",
                 path.c_str());
    return false;
  }
  return true;
}

double Ms(int64_t ns) { return static_cast<double>(ns) * 1e-6; }

void PrintTable(const std::string& path, const Profile& p, size_t top_k) {
  std::printf("phase profile (%s)\n", path.c_str());
  std::printf(
      "  windows %lld  rounds %lld  shards %lld  barrier %.3f ms  "
      "wall %.6f s\n",
      static_cast<long long>(p.windows), static_cast<long long>(p.rounds),
      static_cast<long long>(p.shards), Ms(p.barrier_ns),
      static_cast<double>(p.WallNs()) * 1e-9);
  std::printf("  %-20s %10s %12s %10s %10s %8s\n", "phase", "count",
              "total_ms", "avg_us", "max_us", "wall%");
  const int64_t wall = std::max<int64_t>(p.WallNs(), 1);
  const int64_t lane = std::max<int64_t>(p.BarrierLaneNs(), 1);
  for (size_t i = 0; i < kNumPhases; ++i) {
    const PhaseTotals& t = p.phases[i];
    if (t.count == 0 && t.total_ns == 0) {
      continue;
    }
    const auto phase = static_cast<optum::obs::ProfilePhase>(i);
    // Barrier phases and idle split the barrier wall pro rata by lane time,
    // so the wall% column sums to 100 despite lanes overlapping.
    const double attributed =
        optum::obs::IsBarrierPhase(phase) ||
                phase == optum::obs::ProfilePhase::kIdle
            ? static_cast<double>(t.total_ns) *
                  static_cast<double>(p.barrier_ns) / static_cast<double>(lane)
            : static_cast<double>(t.total_ns);
    std::printf("  %-20s %10lld %12.3f %10.2f %10.2f %7.2f%%\n", PhaseName(i),
                static_cast<long long>(t.count), Ms(t.total_ns),
                t.count > 0 ? Ms(t.total_ns) * 1e3 / static_cast<double>(t.count)
                            : 0.0,
                Ms(t.max_ns) * 1e3,
                100.0 * attributed / static_cast<double>(wall));
  }

  std::printf("\ncritical path: %lld of %lld windows have attribution\n",
              static_cast<long long>(p.cp_windows),
              static_cast<long long>(p.windows));
  std::vector<std::pair<std::pair<int64_t, int64_t>, CpTotals>> ranked(
      p.cp.begin(), p.cp.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second.bound_ns != b.second.bound_ns) {
      return a.second.bound_ns > b.second.bound_ns;
    }
    return a.first < b.first;
  });
  if (!ranked.empty()) {
    std::printf("  %-8s %-20s %12s %12s %12s\n", "shard", "phase",
                "rounds_bound", "bound_ms", "stall_ms");
    for (size_t i = 0; i < std::min(top_k, ranked.size()); ++i) {
      const auto& [key, cp] = ranked[i];
      std::printf("  %-8lld %-20s %12lld %12.3f %12.3f\n",
                  static_cast<long long>(key.first),
                  PhaseName(static_cast<size_t>(key.second)),
                  static_cast<long long>(cp.rounds_bound), Ms(cp.bound_ns),
                  Ms(cp.idle_ns));
    }
  }
}

void PrintDiff(const std::string& base_path, const Profile& base,
               const std::string& cand_path, const Profile& cand) {
  std::printf("\nphase diff: %s -> %s\n", base_path.c_str(),
              cand_path.c_str());
  std::printf("  %-20s %12s %12s %9s %10s %10s\n", "phase", "base_ms",
              "cand_ms", "delta", "base_us", "cand_us");
  for (size_t i = 0; i < kNumPhases; ++i) {
    const PhaseTotals& b = base.phases[i];
    const PhaseTotals& c = cand.phases[i];
    if (b.count == 0 && c.count == 0 && b.total_ns == 0 && c.total_ns == 0) {
      continue;
    }
    const double delta =
        b.total_ns > 0 ? 100.0 * (static_cast<double>(c.total_ns) /
                                      static_cast<double>(b.total_ns) -
                                  1.0)
                       : 0.0;
    std::printf("  %-20s %12.3f %12.3f %+8.1f%% %10.2f %10.2f\n", PhaseName(i),
                Ms(b.total_ns), Ms(c.total_ns), delta,
                b.count > 0 ? Ms(b.total_ns) * 1e3 / static_cast<double>(b.count)
                            : 0.0,
                c.count > 0 ? Ms(c.total_ns) * 1e3 / static_cast<double>(c.count)
                            : 0.0);
  }
  std::printf("  %-20s %12.6f %12.6f\n", "wall_s",
              static_cast<double>(base.WallNs()) * 1e-9,
              static_cast<double>(cand.WallNs()) * 1e-9);
}

}  // namespace

int main(int argc, char** argv) {
  optum::FlagParser flags;
  if (!flags.Parse(argc, argv) || flags.positional().size() != 1) {
    std::fprintf(stderr,
                 "usage: profile_report profile.jsonl [--top N] "
                 "[--diff other.jsonl]\n");
    return 2;
  }
  const std::string path = flags.positional()[0];
  const size_t top_k = static_cast<size_t>(flags.GetInt("top", 5));
  const std::string diff_path = flags.GetString("diff", "");

  Profile profile;
  if (!LoadProfile(path, &profile)) {
    return 1;
  }
  PrintTable(path, profile, top_k);

  if (!diff_path.empty()) {
    Profile other;
    if (!LoadProfile(diff_path, &other)) {
      return 1;
    }
    PrintDiff(path, profile, diff_path, other);
  }
  return 0;
}
