// serve_bench: runs the open-loop placement service (DESIGN.md §12) at a
// configurable scale and writes optum.latency.v1 rows — the JSONL the serve
// layer exports for dashboards and the bench gate.
//
//   serve_bench [--hosts N] [--shards K] [--offered PODS_PER_SEC]
//               [--rounds R] [--round-seconds S] [--process poisson|diurnal]
//               [--queue-capacity N] [--max-per-round N] [--residency ROUNDS]
//               [--pipeline-depth D] [--ingest-threads T]
//               [--span-log PATH] [--metrics-json PATH] [--out PATH]
//               [--burst-amplitude A --burst-duration D --burst-interval I]
//               [--pressure] [--hotspot-log PATH] [--slo-json PATH]
//               [--series-json PATH] [--hot-onset P] [--hot-clear P]
//               [--hot-dwell T] [--slo-threshold P]
//               [--profile-json PATH] [--profile-collapsed PATH]
//               [--profile-window ROUNDS]
//
// --profile-json attaches the phase-level round profiler (DESIGN.md §14)
// and streams optum.profile.v1 windows; join them with tools/profile_report.
// --profile-collapsed additionally writes folded stacks for flamegraph
// tooling. Profile *counts* are deterministic; the ns fields are wall-clock.
//
// --pipeline-depth D > 1 turns on conflict-round pipelining: each
// coordinator shard keeps its next head pods speculatively scored against
// an epoch-snapshotted host view while the serial resolver commits the
// current round. --ingest-threads 1 moves arrival generation onto a
// producer thread behind a hand-off barrier. Both knobs change wall-clock
// throughput only — every exported row is bit-identical to the serial loop.
//
// The burst flags overlay deterministic anomaly storms on the arrival
// process (DESIGN.md §13); the pressure flags attach the host-pressure
// sensor — hotspot episodes stream to --hotspot-log as optum.hotspot.v1,
// per-class violation seconds land in --slo-json as optum.slo.v1, and
// tools/slo_report joins them with the latency row.
//
// With --out the document goes to PATH (one header line, one row line);
// otherwise rows print to stdout after a human-readable summary. Everything
// in a row is deterministic model-time arithmetic — re-running with the
// same flags reproduces it byte-for-byte; only the printed wall-clock
// throughput varies across machines.
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/common/cli_options.h"
#include "src/common/flags.h"
#include "src/obs/hotspot.h"
#include "src/obs/json_writer.h"
#include "src/obs/pressure.h"
#include "src/obs/profiler.h"
#include "src/obs/sinks.h"
#include "src/obs/span_log.h"
#include "src/obs/timeseries.h"
#include "src/serve/placement_service.h"

namespace optum {
namespace {

int Main(int argc, char** argv) {
  FlagParser flags;
  if (!flags.Parse(argc, argv)) {
    std::fprintf(stderr, "serve_bench: malformed flags\n");
    return 2;
  }
  const int hosts = static_cast<int>(flags.GetInt("hosts", 1000));
  const std::string process = flags.GetString("process", "poisson");
  const cli::ObsOptions obs_opts = cli::ParseObsOptions(flags);
  const cli::BurstOptions burst_opts = cli::ParseBurstOptions(flags);

  serve::ServeConfig config;
  config.arrival.offered_pods_per_sec = flags.GetDouble("offered", 500.0);
  config.arrival.round_seconds = flags.GetDouble("round-seconds", 1.0);
  if (process == "diurnal") {
    config.arrival.process = serve::ArrivalProcess::kDiurnal;
  } else if (process != "poisson") {
    std::fprintf(stderr, "serve_bench: unknown --process %s\n", process.c_str());
    return 2;
  }
  config.distributed.num_schedulers =
      static_cast<size_t>(flags.GetInt("shards", 4));
  config.queue_capacity_per_shard =
      static_cast<size_t>(flags.GetInt("queue-capacity", 4096));
  config.max_schedule_per_round =
      static_cast<size_t>(flags.GetInt("max-per-round", 512));
  config.mean_residency_rounds = flags.GetDouble("residency", 0.0);
  config.pipeline_depth =
      static_cast<size_t>(flags.GetInt("pipeline-depth", 1));
  config.ingest_threads =
      static_cast<size_t>(flags.GetInt("ingest-threads", 0));
  config.arrival.burst_amplitude = burst_opts.amplitude;
  config.arrival.burst_duration_rounds = burst_opts.duration_rounds;
  config.arrival.burst_interval_rounds = burst_opts.interval_rounds;
  config.arrival.burst_seed = burst_opts.seed;
  const int64_t rounds = flags.GetInt("rounds", 60);

  const bool pressure_on = flags.GetBool("pressure", false) ||
                           obs_opts.wants_pressure() ||
                           !obs_opts.series_json.empty();

  std::printf("training profiles from the 64-host reference run...\n");
  const Workload reference =
      WorkloadGenerator(bench::DefaultWorkloadConfig()).Generate();
  AlibabaBaseline reference_policy = bench::MakeReferenceScheduler();
  Simulator reference_sim(reference, bench::DefaultSimConfig(), reference_policy);
  const core::OptumProfiles profiles =
      bench::BuildProfiles(reference_sim.Run().trace);

  ClusterState cluster(hosts, kUnitResources, /*history_window=*/64);
  // --prefill K seeds every host with K long-lived pods before serving, the
  // same occupancy regime as the committed bench section (ids start far
  // above the arrival driver's dense-from-0 range).
  const int prefill = static_cast<int>(flags.GetInt("prefill", 0));
  if (prefill > 0) {
    const std::vector<const AppProfile*> catalog = SchedulableApps(reference);
    PodId prefill_id = 1'000'000'000;
    for (int h = 0; h < hosts; ++h) {
      for (int k = 0; k < prefill; ++k) {
        const AppProfile& app =
            *catalog[static_cast<size_t>(prefill_id) % catalog.size()];
        cluster.Place(MakePodSpec(prefill_id, app), &app, h, 0);
        ++prefill_id;
      }
    }
  }
  serve::PlacementService service(reference, profiles, &cluster, config);

  // One obs::Sinks surface for everything the bench attaches: open the
  // requested sink files, then hand the same struct to the service
  // (metrics, spans, series) and the pressure monitor (metrics, hotspot
  // log) — each adopts the fields it understands.
  obs::MetricRegistry registry;
  obs::Sinks sinks;
  if (pressure_on || obs_opts.wants_metrics()) {
    sinks.metrics = &registry;
  }
  std::unique_ptr<obs::SpanLog> span_log;
  if (!obs_opts.span_log.empty()) {
    span_log = std::make_unique<obs::SpanLog>(obs_opts.span_log);
    if (!span_log->ok()) {
      std::fprintf(stderr, "serve_bench: cannot open %s\n",
                   obs_opts.span_log.c_str());
      return 2;
    }
    sinks.span_log = span_log.get();
  }
  std::unique_ptr<obs::HotspotLog> hotspot_log;
  if (!obs_opts.hotspot_log.empty()) {
    hotspot_log = std::make_unique<obs::HotspotLog>(obs_opts.hotspot_log);
    if (!hotspot_log->ok()) {
      return 1;  // OpenJsonSink already reported the failure
    }
    sinks.hotspot_log = hotspot_log.get();
  }
  std::unique_ptr<obs::TimeSeriesRecorder> series;
  if (!obs_opts.series_json.empty()) {
    series = std::make_unique<obs::TimeSeriesRecorder>(
        &registry, obs_opts.series_json, obs_opts.series_ring);
    if (!series->ok()) {
      return 1;
    }
    sinks.series = series.get();
  }
  std::unique_ptr<obs::ProfileLog> profile_log;
  std::unique_ptr<obs::RoundProfiler> profiler;
  if (obs_opts.wants_profile()) {
    obs::RoundProfiler::Options popts;
    popts.window_rounds =
        static_cast<size_t>(flags.GetInt("profile-window", 64));
    profiler = std::make_unique<obs::RoundProfiler>(popts);
    if (!obs_opts.profile_json.empty()) {
      profile_log = std::make_unique<obs::ProfileLog>(obs_opts.profile_json);
      if (!profile_log->ok()) {
        return 1;  // OpenJsonSink already reported the failure
      }
      profiler->set_log(profile_log.get());
    }
    sinks.profile = profiler.get();
  }

  // Pressure sensor (DESIGN.md §13). Gauges go through the registry so the
  // optional series recorder picks them up as columns.
  std::unique_ptr<obs::HostPressureMonitor> monitor;
  if (pressure_on) {
    obs::HostPressureMonitor::Options opts;
    const obs::HotspotConfig hotspot_defaults;
    opts.hotspot.onset_threshold =
        flags.GetDouble("hot-onset", hotspot_defaults.onset_threshold);
    opts.hotspot.clear_threshold =
        flags.GetDouble("hot-clear", hotspot_defaults.clear_threshold);
    opts.hotspot.min_onset_ticks = flags.GetInt("hot-dwell", 3);
    opts.hotspot.min_clear_ticks = flags.GetInt("hot-dwell", 3);
    opts.pressure.slo_threshold = flags.GetDouble("slo-threshold", 0.8);
    opts.num_slo_shards = config.distributed.num_schedulers;
    opts.seconds_per_tick = config.arrival.round_seconds;
    monitor = std::make_unique<obs::HostPressureMonitor>(
        static_cast<size_t>(hosts), opts);
    monitor->AttachSinks(sinks, "serve");
    service.set_pressure_monitor(monitor.get());
  }
  service.AttachSinks(sinks);

  std::printf(
      "serving %lld rounds at %.1f pods/s (%s, %zu shards, depth %zu, "
      "%zu ingest threads)...\n",
      static_cast<long long>(rounds), config.arrival.offered_pods_per_sec,
      process.c_str(), config.distributed.num_schedulers,
      config.pipeline_depth, config.ingest_threads);
  const std::chrono::steady_clock::time_point serve_start =
      std::chrono::steady_clock::now();
  service.RunRounds(rounds);
  const int64_t drain_rounds = service.Drain();
  const double serve_wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    serve_start)
          .count();
  if (monitor != nullptr) {
    monitor->Finalize();
  }
  if (profiler != nullptr) {
    profiler->Finalize();
    if (!obs_opts.profile_collapsed.empty() &&
        !profiler->WriteCollapsed(obs_opts.profile_collapsed)) {
      std::fprintf(stderr, "serve_bench: cannot write %s\n",
                   obs_opts.profile_collapsed.c_str());
      return 1;
    }
  }
  if (span_log != nullptr) {
    span_log->Flush();
  }
  if (hotspot_log != nullptr) {
    hotspot_log->Flush();
  }
  if (series != nullptr) {
    series->Flush();
  }
  if (monitor != nullptr && !obs_opts.slo_json.empty()) {
    if (!monitor->WriteSloJson(obs_opts.slo_json)) {
      return 1;
    }
  }
  if (!obs_opts.metrics_json.empty()) {
    if (!registry.WriteJsonFile(obs_opts.metrics_json)) {
      return 1;
    }
  }

  const serve::LatencyRow row = service.MakeLatencyRow();
  TablePrinter table({"metric", "value"});
  table.AddRow({"arrivals", std::to_string(row.arrivals)});
  table.AddRow({"admitted", std::to_string(row.admitted)});
  table.AddRow({"rejected_full", std::to_string(row.rejected_full)});
  table.AddRow({"placed", std::to_string(row.placed)});
  table.AddRow({"dropped", std::to_string(row.dropped)});
  table.AddRow({"conflicts", std::to_string(row.conflicts)});
  table.AddRow({"drain_rounds", std::to_string(drain_rounds)});
  // Wall clock of the serve phase — the one machine-dependent line here.
  table.AddRow({"serve_wall_s", FormatDouble(serve_wall_s, 3)});
  table.AddRow(
      {"placed_per_wall_s",
       FormatDouble(serve_wall_s > 0.0
                        ? static_cast<double>(row.placed) / serve_wall_s
                        : 0.0,
                    1)});
  table.AddRow({"latency_s_p50", FormatDouble(row.latency_s_p50, 3)});
  table.AddRow({"latency_s_p99", FormatDouble(row.latency_s_p99, 3)});
  table.AddRow({"latency_s_p999", FormatDouble(row.latency_s_p999, 3)});
  table.AddRow({"latency_s_max", FormatDouble(row.latency_s_max, 3)});
  if (config.pipeline_depth > 1) {
    uint64_t memo_hits = 0;
    uint64_t memo_misses = 0;
    for (size_t s = 0; s < service.coordinator().num_schedulers(); ++s) {
      memo_hits += service.coordinator().shard(s).eval_memo_hits();
      memo_misses += service.coordinator().shard(s).eval_memo_misses();
    }
    const uint64_t total = memo_hits + memo_misses;
    table.AddRow({"eval_memo_hits", std::to_string(memo_hits)});
    table.AddRow(
        {"eval_memo_hit_rate",
         FormatDouble(total > 0 ? static_cast<double>(memo_hits) /
                                      static_cast<double>(total)
                                : 0.0,
                      3)});
  }
  if (profiler != nullptr) {
    table.AddRow({"profile_windows",
                  std::to_string(profiler->windows_flushed())});
    table.AddRow({"profile_rounds",
                  std::to_string(profiler->rounds_profiled())});
  }
  if (monitor != nullptr) {
    const obs::SloAccumulator slo = monitor->MergedSlo();
    table.AddRow({"hotspot_episodes",
                  std::to_string(monitor->detector().events_emitted())});
    table.AddRow({"pressure_mean",
                  FormatDouble(monitor->last_mean_pressure(), 4)});
    table.AddRow({"pressure_max",
                  FormatDouble(monitor->last_max_pressure(), 4)});
    table.AddRow(
        {"slo_violation_s_ls",
         FormatDouble(static_cast<double>(slo.violation_ticks(SloClass::kLs)) *
                          monitor->seconds_per_tick(),
                      1)});
    table.AddRow(
        {"slo_violation_s_be",
         FormatDouble(static_cast<double>(slo.violation_ticks(SloClass::kBe)) *
                          monitor->seconds_per_tick(),
                      1)});
  }
  table.Print();

  const std::string document =
      serve::RenderLatencyHeader() + "\n" + serve::RenderLatencyRow(row) + "\n";
  const std::string out_path = flags.GetString("out", "");
  if (out_path.empty()) {
    std::fputs(document.c_str(), stdout);
    return 0;
  }
  return obs::WriteJsonDocument(out_path, document) ? 0 : 1;
}

}  // namespace
}  // namespace optum

int main(int argc, char** argv) { return optum::Main(argc, argv); }
