// serve_bench: runs the open-loop placement service (DESIGN.md §12) at a
// configurable scale and writes optum.latency.v1 rows — the JSONL the serve
// layer exports for dashboards and the bench gate.
//
//   serve_bench [--hosts N] [--shards K] [--offered PODS_PER_SEC]
//               [--rounds R] [--round-seconds S] [--process poisson|diurnal]
//               [--queue-capacity N] [--max-per-round N] [--residency ROUNDS]
//               [--span-log PATH] [--out PATH]
//               [--burst-amplitude A --burst-duration D --burst-interval I]
//               [--pressure] [--hotspot-log PATH] [--slo-json PATH]
//               [--series-json PATH] [--hot-onset P] [--hot-clear P]
//               [--hot-dwell T] [--slo-threshold P]
//
// The burst flags overlay deterministic anomaly storms on the arrival
// process (DESIGN.md §13); the pressure flags attach the host-pressure
// sensor — hotspot episodes stream to --hotspot-log as optum.hotspot.v1,
// per-class violation seconds land in --slo-json as optum.slo.v1, and
// tools/slo_report joins them with the latency row.
//
// With --out the document goes to PATH (one header line, one row line);
// otherwise rows print to stdout after a human-readable summary. Everything
// in a row is deterministic model-time arithmetic — re-running with the
// same flags reproduces it byte-for-byte; only the printed wall-clock
// throughput varies across machines.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/common/flags.h"
#include "src/obs/hotspot.h"
#include "src/obs/json_writer.h"
#include "src/obs/pressure.h"
#include "src/obs/span_log.h"
#include "src/obs/timeseries.h"
#include "src/serve/placement_service.h"

namespace optum {
namespace {

int Main(int argc, char** argv) {
  FlagParser flags;
  if (!flags.Parse(argc, argv)) {
    std::fprintf(stderr, "serve_bench: malformed flags\n");
    return 2;
  }
  const int hosts = static_cast<int>(flags.GetInt("hosts", 1000));
  const std::string process = flags.GetString("process", "poisson");

  serve::ServeConfig config;
  config.arrival.offered_pods_per_sec = flags.GetDouble("offered", 500.0);
  config.arrival.round_seconds = flags.GetDouble("round-seconds", 1.0);
  if (process == "diurnal") {
    config.arrival.process = serve::ArrivalProcess::kDiurnal;
  } else if (process != "poisson") {
    std::fprintf(stderr, "serve_bench: unknown --process %s\n", process.c_str());
    return 2;
  }
  config.distributed.num_schedulers =
      static_cast<size_t>(flags.GetInt("shards", 4));
  config.queue_capacity_per_shard =
      static_cast<size_t>(flags.GetInt("queue-capacity", 4096));
  config.max_schedule_per_round =
      static_cast<size_t>(flags.GetInt("max-per-round", 512));
  config.mean_residency_rounds = flags.GetDouble("residency", 0.0);
  config.arrival.burst_amplitude = flags.GetDouble("burst-amplitude", 0.0);
  config.arrival.burst_duration_rounds = flags.GetInt("burst-duration", 0);
  config.arrival.burst_interval_rounds = flags.GetInt("burst-interval", 0);
  config.arrival.burst_seed =
      static_cast<uint64_t>(flags.GetInt("burst-seed", 1031));
  const int64_t rounds = flags.GetInt("rounds", 60);

  const std::string hotspot_path = flags.GetString("hotspot-log", "");
  const std::string slo_path = flags.GetString("slo-json", "");
  const std::string series_path = flags.GetString("series-json", "");
  const bool pressure_on = flags.GetBool("pressure", false) ||
                           !hotspot_path.empty() || !slo_path.empty() ||
                           !series_path.empty();

  std::printf("training profiles from the 64-host reference run...\n");
  const Workload reference =
      WorkloadGenerator(bench::DefaultWorkloadConfig()).Generate();
  AlibabaBaseline reference_policy = bench::MakeReferenceScheduler();
  Simulator reference_sim(reference, bench::DefaultSimConfig(), reference_policy);
  const core::OptumProfiles profiles =
      bench::BuildProfiles(reference_sim.Run().trace);

  ClusterState cluster(hosts, kUnitResources, /*history_window=*/64);
  serve::PlacementService service(reference, profiles, &cluster, config);

  std::unique_ptr<obs::SpanLog> span_log;
  const std::string span_path = flags.GetString("span-log", "");
  if (!span_path.empty()) {
    span_log = std::make_unique<obs::SpanLog>(span_path);
    if (!span_log->ok()) {
      std::fprintf(stderr, "serve_bench: cannot open %s\n", span_path.c_str());
      return 2;
    }
    service.set_span_log(span_log.get());
  }

  // Pressure sensor + its sinks (DESIGN.md §13). Gauges go through the
  // registry so the optional series recorder picks them up as columns.
  obs::MetricRegistry registry;
  std::unique_ptr<obs::HotspotLog> hotspot_log;
  std::unique_ptr<obs::HostPressureMonitor> monitor;
  std::unique_ptr<obs::TimeSeriesRecorder> series;
  if (pressure_on) {
    obs::HostPressureMonitor::Options opts;
    const obs::HotspotConfig hotspot_defaults;
    opts.hotspot.onset_threshold =
        flags.GetDouble("hot-onset", hotspot_defaults.onset_threshold);
    opts.hotspot.clear_threshold =
        flags.GetDouble("hot-clear", hotspot_defaults.clear_threshold);
    opts.hotspot.min_onset_ticks = flags.GetInt("hot-dwell", 3);
    opts.hotspot.min_clear_ticks = flags.GetInt("hot-dwell", 3);
    opts.pressure.slo_threshold = flags.GetDouble("slo-threshold", 0.8);
    opts.num_slo_shards = config.distributed.num_schedulers;
    opts.seconds_per_tick = config.arrival.round_seconds;
    monitor = std::make_unique<obs::HostPressureMonitor>(
        static_cast<size_t>(hosts), opts);
    if (!hotspot_path.empty()) {
      hotspot_log = std::make_unique<obs::HotspotLog>(hotspot_path);
      if (!hotspot_log->ok()) {
        return 1;  // OpenJsonSink already reported the failure
      }
      monitor->set_hotspot_log(hotspot_log.get());
    }
    service.AttachMetrics(&registry);
    monitor->AttachMetrics(&registry, "serve");
    service.set_pressure_monitor(monitor.get());
    if (!series_path.empty()) {
      series = std::make_unique<obs::TimeSeriesRecorder>(&registry, series_path);
      if (!series->ok()) {
        return 1;
      }
      service.set_series(series.get());
    }
  }

  std::printf("serving %lld rounds at %.1f pods/s (%s, %zu shards)...\n",
              static_cast<long long>(rounds),
              config.arrival.offered_pods_per_sec, process.c_str(),
              config.distributed.num_schedulers);
  service.RunRounds(rounds);
  const int64_t drain_rounds = service.Drain();
  if (monitor != nullptr) {
    monitor->Finalize();
  }
  if (span_log != nullptr) {
    span_log->Flush();
  }
  if (hotspot_log != nullptr) {
    hotspot_log->Flush();
  }
  if (series != nullptr) {
    series->Flush();
  }
  if (monitor != nullptr && !slo_path.empty()) {
    if (!monitor->WriteSloJson(slo_path)) {
      return 1;
    }
  }

  const serve::LatencyRow row = service.MakeLatencyRow();
  TablePrinter table({"metric", "value"});
  table.AddRow({"arrivals", std::to_string(row.arrivals)});
  table.AddRow({"admitted", std::to_string(row.admitted)});
  table.AddRow({"rejected_full", std::to_string(row.rejected_full)});
  table.AddRow({"placed", std::to_string(row.placed)});
  table.AddRow({"dropped", std::to_string(row.dropped)});
  table.AddRow({"conflicts", std::to_string(row.conflicts)});
  table.AddRow({"drain_rounds", std::to_string(drain_rounds)});
  table.AddRow({"latency_s_p50", FormatDouble(row.latency_s_p50, 3)});
  table.AddRow({"latency_s_p99", FormatDouble(row.latency_s_p99, 3)});
  table.AddRow({"latency_s_p999", FormatDouble(row.latency_s_p999, 3)});
  table.AddRow({"latency_s_max", FormatDouble(row.latency_s_max, 3)});
  if (monitor != nullptr) {
    const obs::SloAccumulator slo = monitor->MergedSlo();
    table.AddRow({"hotspot_episodes",
                  std::to_string(monitor->detector().events_emitted())});
    table.AddRow({"pressure_mean",
                  FormatDouble(monitor->last_mean_pressure(), 4)});
    table.AddRow({"pressure_max",
                  FormatDouble(monitor->last_max_pressure(), 4)});
    table.AddRow(
        {"slo_violation_s_ls",
         FormatDouble(static_cast<double>(slo.violation_ticks(SloClass::kLs)) *
                          monitor->seconds_per_tick(),
                      1)});
    table.AddRow(
        {"slo_violation_s_be",
         FormatDouble(static_cast<double>(slo.violation_ticks(SloClass::kBe)) *
                          monitor->seconds_per_tick(),
                      1)});
  }
  table.Print();

  const std::string document =
      serve::RenderLatencyHeader() + "\n" + serve::RenderLatencyRow(row) + "\n";
  const std::string out_path = flags.GetString("out", "");
  if (out_path.empty()) {
    std::fputs(document.c_str(), stdout);
    return 0;
  }
  return obs::WriteJsonDocument(out_path, document) ? 0 : 1;
}

}  // namespace
}  // namespace optum

int main(int argc, char** argv) { return optum::Main(argc, argv); }
