// runsim: generate a synthetic unified-scheduling workload and run it under
// any scheduler in the library, from the command line.
//
// Examples:
//   runsim --scheduler optum --hosts 96 --hours 8
//   runsim --scheduler nsigma --hosts 64 --hours 4 --seed 7
//   runsim --scheduler optum --omega_o 0.5 --omega_b 0.5 --triple-ero
//   runsim --scheduler alibaba --trace-out /tmp/trace   # persist the trace
#include <cstdio>
#include <memory>

#include "src/common/cli_options.h"
#include "src/common/flags.h"
#include "src/core/offline_profiler.h"
#include "src/core/optum_scheduler.h"
#include "src/obs/decision_log.h"
#include "src/obs/hotspot.h"
#include "src/obs/json_writer.h"
#include "src/obs/metrics.h"
#include "src/obs/pressure.h"
#include "src/obs/profiler.h"
#include "src/obs/schema.h"
#include "src/sched/baselines.h"
#include "src/sched/medea.h"
#include "src/serve/arrival_driver.h"
#include "src/sim/simulator.h"
#include "src/trace/trace_io.h"
#include "src/trace/trace_stats.h"
#include "src/trace/workload_generator.h"

using namespace optum;

namespace {

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: runsim [flags]\n"
      "  --scheduler S    alibaba | borg | nsigma | rc | medea | optum (default optum)\n"
      "  --hosts N        cluster size (default 64)\n"
      "  --hours H        simulated hours (default 6)\n"
      "  --seed S         workload seed (default 42)\n"
      "  --ls-load X      initial LS request load (default 0.8)\n"
      "  --be-load X      BE request-load target (default 0.25)\n"
      "  --omega_o X      Optum LS weight (default 0.7)\n"
      "  --omega_b X      Optum BE weight (default 0.3)\n"
      "  --sample X       Optum host sampling fraction (default 0.05)\n"
      "  --triple-ero     enable triple-wise ERO profiling (Optum)\n"
      "  --trace-out DIR  write the run's trace bundle as CSVs\n"
      "  --decision-log F JSONL per-placement decision traces (Optum only)\n"
      "%s%s"
      "  --json           machine-readable run summary on stdout\n"
      "  --json-out F     write the --json summary to F instead of stdout\n",
      cli::ObsOptionsHelp(), cli::BurstOptionsHelp());
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  if (!flags.Parse(argc, argv) || flags.GetBool("help", false)) {
    PrintUsage();
    return 2;
  }

  const std::string json_out_path = flags.GetString("json-out", "");
  const bool json_out = flags.GetBool("json", false) || !json_out_path.empty();
  const cli::ObsOptions obs_opts = cli::ParseObsOptions(flags);
  const cli::BurstOptions burst_opts = cli::ParseBurstOptions(flags);
  const std::string decision_log_path = flags.GetString("decision-log", "");

  WorkloadConfig config;
  config.num_hosts = static_cast<int>(flags.GetInt("hosts", 64));
  config.horizon = flags.GetInt("hours", 6) * kTicksPerHour;
  config.seed = cli::GetSeed(flags, "seed", 42);
  config.initial_ls_request_load = flags.GetDouble("ls-load", 0.8);
  config.be_target_request_load = flags.GetDouble("be-load", 0.25);
  Workload workload = WorkloadGenerator(config).Generate();

  // Anomaly-storm overlay (DESIGN.md §13): correlated extra arrivals the
  // hotspot detector is meant to find. Injected into the arrival stream up
  // front so every scheduler sees the identical storm schedule.
  serve::ArrivalConfig burst;
  burst.burst_amplitude = burst_opts.amplitude;
  burst.burst_duration_rounds = burst_opts.duration_rounds;
  burst.burst_interval_rounds = burst_opts.interval_rounds;
  burst.burst_seed = burst_opts.seed;
  int64_t storm_pods = 0;
  if (burst.burst_enabled()) {
    burst.offered_pods_per_sec =
        burst_opts.offered_pods_per_sec > 0.0
            ? burst_opts.offered_pods_per_sec
            : static_cast<double>(config.num_hosts) / 300.0;
    burst.round_seconds = kSecondsPerTick;
    storm_pods = serve::AppendStormOverlay(burst, config.horizon,
                                           burst_opts.cpu_scale, &workload);
  }

  if (!json_out) {
    std::printf("workload: %zu apps, %zu pods, %d hosts, %lld ticks\n",
                workload.apps.size(), workload.pods.size(), config.num_hosts,
                static_cast<long long>(config.horizon));
    if (storm_pods > 0) {
      std::printf("storm overlay: %lld extra pods (amplitude %.1f, %lld-tick "
                  "storms every %lld ticks)\n",
                  static_cast<long long>(storm_pods), burst.burst_amplitude,
                  static_cast<long long>(burst.burst_duration_rounds),
                  static_cast<long long>(burst.burst_interval_rounds));
    }
  }

  SimConfig sim_config;
  sim_config.pod_usage_period = 5;

  const std::string which = flags.GetString("scheduler", "optum");
  std::unique_ptr<PlacementPolicy> policy;
  std::unique_ptr<core::OptumScheduler> optum;
  if (which == "alibaba") {
    policy = std::make_unique<AlibabaBaseline>();
  } else if (which == "borg") {
    policy = MakeBorgLike();
  } else if (which == "nsigma") {
    policy = MakeNSigmaScheduler();
  } else if (which == "rc") {
    policy = MakeResourceCentralLike();
  } else if (which == "medea") {
    policy = std::make_unique<Medea>();
  } else if (which == "optum") {
    // Profile from a reference run first, as in the paper's workflow.
    if (!json_out) {
      std::printf("profiling from a reference run...\n");
    }
    AlibabaBaseline reference;
    const SimResult ref_result = Simulator(workload, sim_config, reference).Run();
    core::OfflineProfilerConfig prof_config;
    prof_config.max_train_samples = 1500;
    prof_config.enable_triple_ero = flags.GetBool("triple-ero", false);
    core::OptumProfiles profiles =
        core::OfflineProfiler(prof_config).BuildProfiles(ref_result.trace);
    core::OptumConfig optum_config;
    optum_config.omega_o = flags.GetDouble("omega_o", 0.7);
    optum_config.omega_b = flags.GetDouble("omega_b", 0.3);
    optum_config.sample_fraction = flags.GetDouble("sample", 0.05);
    optum_config.use_triple_ero = flags.GetBool("triple-ero", false);
    optum = std::make_unique<core::OptumScheduler>(std::move(profiles), optum_config);
    sim_config.on_tick_end = [&optum](const ClusterState& cluster, Tick now) {
      optum->ObserveColocation(cluster, now);
    };
  } else {
    PrintUsage();
    return 2;
  }

  // Observability wiring (DESIGN.md §9): open every requested sink file,
  // collect them into one obs::Sinks surface, and attach that surface to
  // the simulator config, the active policy, and the pressure monitor. The
  // registry collects per-tick sim.* gauges for any scheduler; the Optum
  // scheduler additionally publishes its hot-path timers, counters, and
  // predictor-cache gauges.
  obs::MetricRegistry registry;
  obs::Sinks sinks;
  std::unique_ptr<obs::DecisionLog> decision_log;
  std::unique_ptr<obs::SpanLog> span_log;
  std::unique_ptr<obs::TimeSeriesRecorder> series;
  std::unique_ptr<obs::HotspotLog> hotspot_log;
  std::unique_ptr<obs::HostPressureMonitor> monitor;
  std::unique_ptr<obs::ProfileLog> profile_log;
  std::unique_ptr<obs::RoundProfiler> profiler;
  if (obs_opts.wants_metrics()) {
    sinks.metrics = &registry;
  }
  if (obs_opts.wants_profile()) {
    profiler = std::make_unique<obs::RoundProfiler>();
    if (!obs_opts.profile_json.empty()) {
      profile_log = std::make_unique<obs::ProfileLog>(obs_opts.profile_json);
      if (!profile_log->ok()) {
        return 1;  // OpenJsonSink already reported the failure
      }
      profiler->set_log(profile_log.get());
    }
    sinks.profile = profiler.get();
  }
  if (!decision_log_path.empty()) {
    if (!optum) {
      std::fprintf(stderr, "--decision-log requires --scheduler optum\n");
      return 2;
    }
    decision_log = std::make_unique<obs::DecisionLog>(decision_log_path);
    if (!decision_log->ok()) {
      return 1;  // OpenJsonSink already reported the failure
    }
    sinks.decision_log = decision_log.get();
  }
  if (!obs_opts.span_log.empty()) {
    span_log = std::make_unique<obs::SpanLog>(obs_opts.span_log);
    if (!span_log->ok()) {
      return 1;  // OpenJsonSink already reported the failure
    }
    if (sinks.metrics != nullptr) {
      span_log->AttachMetrics(&registry);
    }
    sinks.span_log = span_log.get();
  }
  if (!obs_opts.series_json.empty()) {
    series = std::make_unique<obs::TimeSeriesRecorder>(
        &registry, obs_opts.series_json, obs_opts.series_ring);
    if (!series->ok()) {
      return 1;  // OpenJsonSink already reported the failure
    }
    sinks.series = series.get();
  }
  if (!obs_opts.hotspot_log.empty()) {
    hotspot_log = std::make_unique<obs::HotspotLog>(obs_opts.hotspot_log);
    if (!hotspot_log->ok()) {
      return 1;  // OpenJsonSink already reported the failure
    }
    sinks.hotspot_log = hotspot_log.get();
  }

  // Host-pressure sensing (DESIGN.md §13): the monitor rides the simulator
  // tick; under Optum the pressure signal folds in the predicted resident
  // interference from the ERO-backed predictor, otherwise it is
  // capacity-only.
  if (obs_opts.wants_pressure()) {
    monitor = std::make_unique<obs::HostPressureMonitor>(
        static_cast<size_t>(config.num_hosts),
        obs::HostPressureMonitor::Options{});
    monitor->AttachSinks(sinks, "sim");
    sim_config.pressure = monitor.get();
    if (optum) {
      core::OptumScheduler* opt = optum.get();
      sim_config.pressure_interference = [opt](const Host& host,
                                               double cpu_util,
                                               double mem_util) {
        return opt->interference_predictor().ResidentInterference(
            host, cpu_util, mem_util, /*weight_ls=*/1.0, /*weight_be=*/0.0,
            /*lane=*/0);
      };
    }
  }

  PlacementPolicy& active = optum ? *optum : *policy;
  sim_config.sinks = sinks;
  active.AttachSinks(sinks);
  const SimResult result = Simulator(workload, sim_config, active).Run();

  const TraceSummary trace_summary = Summarize(result.trace);
  if (json_out) {
    obs::JsonWriter w;
    w.BeginObject();
    w.KV("schema", obs::kRunsimSchema);
    w.KV("scheduler", active.name());
    w.KV("hosts", config.num_hosts);
    w.KV("horizon_ticks", config.horizon);
    w.KV("seed", static_cast<int64_t>(config.seed));
    w.KV("scheduled_pods", result.scheduled_pods);
    w.KV("never_scheduled_pods", result.never_scheduled_pods);
    w.KV("avg_cpu_util_nonidle", result.MeanCpuUtilNonIdle());
    w.KV("avg_mem_util_nonidle", result.MeanMemUtilNonIdle());
    w.KV("violation_rate", result.violation_rate());
    w.KV("oom_kills", result.oom_kills);
    w.KV("preemptions", result.preemptions);
    w.Key("summary");
    w.RawValue(RenderSummaryJson(trace_summary));
    w.EndObject();
    if (!json_out_path.empty()) {
      if (!obs::WriteJsonDocument(json_out_path, w.str())) {
        return 1;
      }
    } else {
      std::printf("%s\n", w.str().c_str());
    }
  } else {
    std::printf("\n[%s]\n", active.name().c_str());
    std::printf("  scheduled pods:        %lld (pending at end: %lld)\n",
                static_cast<long long>(result.scheduled_pods),
                static_cast<long long>(result.never_scheduled_pods));
    std::printf("  avg CPU util (busy):   %.4f\n", result.MeanCpuUtilNonIdle());
    std::printf("  avg mem util (busy):   %.4f\n", result.MeanMemUtilNonIdle());
    std::printf("  usage violation rate:  %.5f\n", result.violation_rate());
    std::printf("  OOM kills / preempts:  %lld / %lld\n",
                static_cast<long long>(result.oom_kills),
                static_cast<long long>(result.preemptions));
    std::printf("\n%s", RenderSummary(trace_summary).c_str());
  }

  if (!obs_opts.metrics_json.empty()) {
    if (!registry.WriteJsonFile(obs_opts.metrics_json)) {
      return 1;  // WriteJsonDocument already reported the failure
    }
    if (!json_out) {
      std::printf("\nmetrics written to %s\n", obs_opts.metrics_json.c_str());
    }
  }
  if (decision_log != nullptr && !json_out) {
    std::printf("decision log: %lld records in %s\n",
                static_cast<long long>(decision_log->records_written()),
                decision_log_path.c_str());
  }
  if (span_log != nullptr && !json_out) {
    std::printf("span log: %lld records in %s\n",
                static_cast<long long>(span_log->records_written()),
                obs_opts.span_log.c_str());
  }
  if (series != nullptr && !json_out) {
    std::printf("series: %lld samples in %s (ring %zu)\n",
                static_cast<long long>(series->samples_written()),
                obs_opts.series_json.c_str(), series->ring_capacity());
  }
  if (hotspot_log != nullptr) {
    hotspot_log->Flush();
    if (!json_out) {
      std::printf("hotspot log: %lld episodes in %s\n",
                  static_cast<long long>(monitor->detector().events_emitted()),
                  obs_opts.hotspot_log.c_str());
    }
  }
  if (monitor != nullptr && !obs_opts.slo_json.empty()) {
    if (!monitor->WriteSloJson(obs_opts.slo_json)) {
      return 1;  // WriteJsonDocument already reported the failure
    }
    if (!json_out) {
      std::printf("slo accounting written to %s\n", obs_opts.slo_json.c_str());
    }
  }
  if (profiler != nullptr) {
    // The simulator already called Finalize() at the horizon; repeated
    // finalization is a no-op, so this also covers early-exit paths.
    profiler->Finalize();
    if (!obs_opts.profile_collapsed.empty() &&
        !profiler->WriteCollapsed(obs_opts.profile_collapsed)) {
      std::fprintf(stderr, "failed to write %s\n",
                   obs_opts.profile_collapsed.c_str());
      return 1;
    }
    if (!json_out) {
      std::printf("profile: %lld windows over %lld ticks\n",
                  static_cast<long long>(profiler->windows_flushed()),
                  static_cast<long long>(profiler->rounds_profiled()));
    }
  }

  const std::string trace_out = flags.GetString("trace-out", "");
  if (!trace_out.empty()) {
    if (!WriteTraceBundle(result.trace, trace_out)) {
      std::fprintf(stderr, "failed to write trace to %s\n", trace_out.c_str());
      return 1;
    }
    std::printf("\ntrace bundle written to %s\n", trace_out.c_str());
  }
  return 0;
}
