// bench_diff: compares two BENCH_hotpath.json documents and fails on
// throughput regressions — the repo's first CI-able perf gate
// (tools/bench_runner.sh runs it against the committed baseline).
//
// Throughput leaves are recognized by key prefix: pods_per_sec* and
// ticks_per_sec* are higher-is-better, ns_row* is lower-is-better. Rows in
// bench arrays are matched by their identifying fields (hosts, pods,
// threads, batch, ...), not by index, so reordering or appending rows never
// misattributes a number.
//
// Usage:
//   bench_diff [--threshold PCT] old.json new.json
//
// Exit codes: 0 = no regression (including the no-baseline case: a missing
// old.json prints how to record one and passes, so fresh checkouts are not
// gated on a file they cannot have), 1 = at least one metric regressed more
// than the threshold, 2 = usage or parse error. The default threshold is
// deliberately generous (30%) because the reference numbers come from
// noisy shared machines; tighten it with --threshold on quiet hardware.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "src/common/flags.h"
#include "src/obs/json_reader.h"

using optum::obs::JsonValue;

namespace {

bool ReadFile(const std::string& path, std::string* out, bool* opened) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (opened != nullptr) {
      *opened = false;
      return false;
    }
    std::fprintf(stderr, "bench_diff: cannot open %s\n", path.c_str());
    return false;
  }
  if (opened != nullptr) {
    *opened = true;
  }
  char buf[1 << 16];
  size_t n;
  out->clear();
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out->append(buf, n);
  }
  std::fclose(f);
  return true;
}

enum class Direction { kNotAMetric, kHigherBetter, kLowerBetter };

Direction Classify(const std::string& key) {
  if (key.rfind("pods_per_sec", 0) == 0 || key.rfind("ticks_per_sec", 0) == 0) {
    return Direction::kHigherBetter;
  }
  // ns/row (forest inference) and latency_s_* (serve-layer placement
  // latency percentiles) are both lower-is-better. The latency values are
  // deterministic model-time arithmetic, so any nonzero change means
  // service behavior changed, not machine noise.
  if (key.rfind("ns_row", 0) == 0 || key.rfind("latency_s", 0) == 0) {
    return Direction::kLowerBetter;
  }
  return Direction::kNotAMetric;
}

// Fields that identify a bench row across the two files (never compared as
// metrics themselves).
constexpr const char* kIdentityKeys[] = {"hosts",   "pods",  "threads",
                                         "batch",   "ticks", "candidates_per_pod",
                                         "trees",   "rows",  "features",
                                         "shards",  "offered_pods_per_sec",
                                         "rounds",  "pipeline_depth"};

std::string RowSignature(const JsonValue& row) {
  std::string sig;
  for (const char* key : kIdentityKeys) {
    const JsonValue* v = row.Find(key);
    if (v != nullptr && v->is_number()) {
      sig += key;
      sig += '=';
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", v->number);
      sig += buf;
      sig += ',';
    }
  }
  return sig;
}

struct Comparison {
  std::string path;
  double old_value = 0.0;
  double new_value = 0.0;
  double change_pct = 0.0;  // signed; positive = improved
  bool regressed = false;
};

void Compare(const JsonValue& before, const JsonValue& after,
             const std::string& path, double threshold_pct,
             std::vector<Comparison>* out, int* missing) {
  if (before.is_object() && after.is_object()) {
    for (const auto& [key, old_child] : before.members) {
      const JsonValue* new_child = after.Find(key);
      const Direction dir = Classify(key);
      if (dir != Direction::kNotAMetric && old_child.is_number()) {
        if (new_child == nullptr || !new_child->is_number()) {
          ++*missing;
          continue;
        }
        Comparison c;
        c.path = path + key;
        c.old_value = old_child.number;
        c.new_value = new_child->number;
        if (c.old_value != 0.0) {
          const double delta = (c.new_value - c.old_value) / c.old_value * 100.0;
          c.change_pct = dir == Direction::kHigherBetter ? delta : -delta;
        }
        c.regressed = c.change_pct < -threshold_pct;
        out->push_back(c);
        continue;
      }
      if (new_child == nullptr) {
        if (old_child.is_object() || old_child.is_array()) {
          ++*missing;
        }
        continue;
      }
      Compare(old_child, *new_child, path + key + ".", threshold_pct, out, missing);
    }
    return;
  }
  if (before.is_array() && after.is_array()) {
    for (size_t i = 0; i < before.items.size(); ++i) {
      const JsonValue& old_row = before.items[i];
      if (!old_row.is_object()) {
        continue;  // plain value arrays carry no named metrics
      }
      const std::string sig = RowSignature(old_row);
      const JsonValue* match = nullptr;
      for (const JsonValue& new_row : after.items) {
        if (new_row.is_object() && RowSignature(new_row) == sig) {
          match = &new_row;
          break;
        }
      }
      if (match == nullptr) {
        ++*missing;
        continue;
      }
      Compare(old_row, *match, path + "[" + sig + "].", threshold_pct, out,
              missing);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  optum::FlagParser flags;
  if (!flags.Parse(argc, argv) || flags.positional().size() != 2) {
    std::fprintf(stderr,
                 "usage: bench_diff [--threshold PCT] old.json new.json\n");
    return 2;
  }
  const double threshold = flags.GetDouble("threshold", 30.0);

  std::string old_text, new_text;
  bool baseline_exists = true;
  if (!ReadFile(flags.positional()[0], &old_text, &baseline_exists)) {
    if (!baseline_exists) {
      // A missing baseline is the expected state of a fresh checkout or a
      // machine that has never benched — tell the user how to create one and
      // pass the gate instead of failing it.
      std::printf(
          "bench_diff: no baseline at %s — nothing to compare against.\n"
          "Run tools/bench_runner.sh --write-baseline to record one, then "
          "commit it.\n",
          flags.positional()[0].c_str());
      return 0;
    }
    return 2;
  }
  if (!ReadFile(flags.positional()[1], &new_text, nullptr)) {
    return 2;
  }
  JsonValue before, after;
  std::string error;
  if (!optum::obs::ParseJson(old_text, &before, &error)) {
    std::fprintf(stderr, "bench_diff: %s: %s\n", flags.positional()[0].c_str(),
                 error.c_str());
    return 2;
  }
  if (!optum::obs::ParseJson(new_text, &after, &error)) {
    std::fprintf(stderr, "bench_diff: %s: %s\n", flags.positional()[1].c_str(),
                 error.c_str());
    return 2;
  }

  std::vector<Comparison> comparisons;
  int missing = 0;
  Compare(before, after, "", threshold, &comparisons, &missing);

  int regressions = 0;
  for (const Comparison& c : comparisons) {
    if (c.regressed) {
      ++regressions;
    }
    std::printf("%-11s %+7.1f%%  %-60s %12.1f -> %12.1f\n",
                c.regressed ? "REGRESSION" : "ok", c.change_pct, c.path.c_str(),
                c.old_value, c.new_value);
  }
  if (missing > 0) {
    std::printf("note: %d metric(s)/row(s) present in old but missing in new "
                "(not compared)\n",
                missing);
  }
  std::printf("%zu metric(s) compared, %d regression(s) beyond %.1f%%\n",
              comparisons.size(), regressions, threshold);
  if (comparisons.empty()) {
    std::fprintf(stderr, "bench_diff: no comparable throughput metrics found\n");
    return 2;
  }
  return regressions > 0 ? 1 : 0;
}
