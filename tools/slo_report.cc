// slo_report: joins the sensor layer's exports — the optum.slo.v1 per-class
// violation document, the optum.hotspot.v1 episode stream, and optionally an
// optum.latency.v1 row file and an optum.series.v1 gauge stream — into one
// human-readable report: per-class SLO-violation-seconds, the top-k hotspot
// hosts by hot time, and the run's placement-latency percentiles.
//
// Usage:
//   slo_report --slo slo.json [--hotspots hotspots.jsonl]
//              [--latency latency.jsonl] [--series series.jsonl] [--top N]
//
// Exit codes: 0 ok, 1 I/O or schema error, 2 usage error.
#include <algorithm>
#include <cstdio>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/common/flags.h"
#include "src/obs/json_reader.h"
#include "src/obs/schema.h"

using optum::obs::JsonValue;

namespace {

struct HostHotness {
  int64_t host = -1;
  int64_t episodes = 0;
  int64_t hot_ticks = 0;
  double peak_pressure = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  optum::FlagParser flags;
  if (!flags.Parse(argc, argv) || !flags.Has("slo")) {
    std::fprintf(stderr,
                 "usage: slo_report --slo slo.json [--hotspots hotspots.jsonl] "
                 "[--latency latency.jsonl] [--series series.jsonl] [--top N]\n");
    return 2;
  }
  const std::string slo_path = flags.GetString("slo", "");
  const std::string hotspots_path = flags.GetString("hotspots", "");
  const std::string latency_path = flags.GetString("latency", "");
  const std::string series_path = flags.GetString("series", "");
  const size_t top_k = static_cast<size_t>(flags.GetInt("top", 5));

  // --- optum.slo.v1: per-class violation table ---
  std::string slo_text;
  if (!optum::obs::ReadWholeFile(slo_path, &slo_text)) {
    std::fprintf(stderr, "slo_report: cannot open %s\n", slo_path.c_str());
    return 1;
  }
  JsonValue slo_doc;
  std::string error;
  if (!optum::obs::ParseJson(slo_text, &slo_doc, &error)) {
    std::fprintf(stderr, "slo_report: %s: %s\n", slo_path.c_str(), error.c_str());
    return 1;
  }
  const JsonValue* tag = slo_doc.Find("schema");
  if (tag == nullptr || !tag->is_string() ||
      tag->string_value != optum::obs::kSloSchema) {
    std::fprintf(stderr, "slo_report: %s is not an %s document\n",
                 slo_path.c_str(), optum::obs::kSloSchema);
    return 1;
  }
  const JsonValue* classes = slo_doc.Find("classes");
  if (classes == nullptr || !classes->is_array() || classes->items.empty()) {
    std::fprintf(stderr, "slo_report: %s has no classes\n", slo_path.c_str());
    return 1;
  }
  std::printf("SLO violation accounting (%s)\n", slo_path.c_str());
  std::printf("  %-8s %16s %16s %10s\n", "class", "observed_s", "violation_s",
              "violation");
  double total_observed_s = 0.0, total_violation_s = 0.0;
  for (const JsonValue& row : classes->items) {
    const JsonValue* name = row.Find("class");
    const double observed_s =
        row.Find("observed_seconds") != nullptr
            ? row.Find("observed_seconds")->AsNumber()
            : 0.0;
    const double violation_s =
        row.Find("violation_seconds") != nullptr
            ? row.Find("violation_seconds")->AsNumber()
            : 0.0;
    total_observed_s += observed_s;
    total_violation_s += violation_s;
    std::printf("  %-8s %16.1f %16.1f %9.2f%%\n",
                name != nullptr && name->is_string() ? name->string_value.c_str()
                                                     : "?",
                observed_s, violation_s,
                observed_s > 0.0 ? 100.0 * violation_s / observed_s : 0.0);
  }
  std::printf("  %-8s %16.1f %16.1f %9.2f%%\n", "total", total_observed_s,
              total_violation_s,
              total_observed_s > 0.0
                  ? 100.0 * total_violation_s / total_observed_s
                  : 0.0);

  // --- optum.hotspot.v1: episode roll-up and top-k hosts ---
  if (!hotspots_path.empty()) {
    std::map<int64_t, HostHotness> by_host;
    int64_t episodes = 0, open_episodes = 0, total_hot_ticks = 0;
    double peak = 0.0;
    // Zero data rows is a valid hotspot stream: a calm run has no episodes.
    const std::string err = optum::obs::ForEachJsonlRow(
        hotspots_path, optum::obs::kHotspotSchema, [&](const JsonValue& row) {
          const int64_t host =
              row.Find("host") != nullptr ? row.Find("host")->AsInt() : -1;
          const int64_t duration =
              row.Find("duration") != nullptr ? row.Find("duration")->AsInt() : 0;
          const double p = row.Find("peak_pressure") != nullptr
                               ? row.Find("peak_pressure")->AsNumber()
                               : 0.0;
          const JsonValue* open = row.Find("open");
          ++episodes;
          if (open != nullptr && open->bool_value) {
            ++open_episodes;
          }
          total_hot_ticks += duration;
          peak = std::max(peak, p);
          HostHotness& h = by_host[host];
          h.host = host;
          ++h.episodes;
          h.hot_ticks += duration;
          h.peak_pressure = std::max(h.peak_pressure, p);
        });
    if (!err.empty()) {
      std::fprintf(stderr, "slo_report: %s\n", err.c_str());
      return 1;
    }
    std::printf("\nhotspots (%s)\n", hotspots_path.c_str());
    std::printf("  episodes %lld (open at end: %lld), hot hosts %zu, "
                "hot ticks %lld, peak pressure %.4f\n",
                static_cast<long long>(episodes),
                static_cast<long long>(open_episodes), by_host.size(),
                static_cast<long long>(total_hot_ticks), peak);
    std::vector<HostHotness> ranked;
    ranked.reserve(by_host.size());
    for (const auto& [host, h] : by_host) {
      ranked.push_back(h);
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const HostHotness& a, const HostHotness& b) {
                if (a.hot_ticks != b.hot_ticks) {
                  return a.hot_ticks > b.hot_ticks;
                }
                return a.host < b.host;
              });
    if (!ranked.empty()) {
      std::printf("  %-8s %10s %10s %14s\n", "host", "episodes", "hot_ticks",
                  "peak_pressure");
      for (size_t i = 0; i < std::min(top_k, ranked.size()); ++i) {
        std::printf("  %-8lld %10lld %10lld %14.4f\n",
                    static_cast<long long>(ranked[i].host),
                    static_cast<long long>(ranked[i].episodes),
                    static_cast<long long>(ranked[i].hot_ticks),
                    ranked[i].peak_pressure);
      }
    }
  }

  // --- optum.latency.v1: echo the run's placement-latency percentiles ---
  if (!latency_path.empty()) {
    std::printf("\nplacement latency (%s)\n", latency_path.c_str());
    optum::obs::JsonlReadStats stats;
    const std::string err = optum::obs::ForEachJsonlRow(
        latency_path, optum::obs::kLatencySchema,
        [&](const JsonValue& row) {
          auto num = [&row](const char* key) {
            const JsonValue* v = row.Find(key);
            return v != nullptr ? v->AsNumber() : 0.0;
          };
          std::printf("  hosts %-6.0f offered %-8.1f placed %-8.0f "
                      "p50 %.4gs p99 %.4gs p999 %.4gs\n",
                      num("hosts"), num("offered_pods_per_sec"), num("placed"),
                      num("latency_s_p50"), num("latency_s_p99"),
                      num("latency_s_p999"));
        },
        &stats);
    if (!err.empty()) {
      std::fprintf(stderr, "slo_report: %s\n", err.c_str());
      return 1;
    }
    if (stats.data_rows == 0) {
      std::fprintf(stderr, "slo_report: no latency rows in %s\n",
                   latency_path.c_str());
      return 1;
    }
  }

  // --- optum.series.v1: pressure-column summary ---
  if (!series_path.empty()) {
    std::map<std::string, std::pair<double, double>> pressure_cols;  // last, max
    optum::obs::JsonlReadStats stats;
    const std::string err = optum::obs::ForEachJsonlRow(
        series_path, optum::obs::kSeriesSchema,
        [&](const JsonValue& row) {
          const JsonValue* gauges = row.Find("gauges");
          if (gauges == nullptr || !gauges->is_object()) {
            return;
          }
          for (const auto& [name, value] : gauges->members) {
            if (!value.is_number() ||
                name.find(".pressure.") == std::string::npos) {
              continue;
            }
            auto& [last, max] = pressure_cols[name];
            last = value.number;
            max = std::max(max, value.number);
          }
        },
        &stats);
    if (!err.empty()) {
      std::fprintf(stderr, "slo_report: %s\n", err.c_str());
      return 1;
    }
    if (stats.data_rows == 0) {
      std::fprintf(stderr, "slo_report: no series rows in %s\n",
                   series_path.c_str());
      return 1;
    }
    if (!pressure_cols.empty()) {
      std::printf("\npressure series (%s)\n", series_path.c_str());
      for (const auto& [name, lm] : pressure_cols) {
        std::printf("  %-36s last %.4f  max %.4f\n", name.c_str(), lm.first,
                    lm.second);
      }
    }
  }
  return 0;
}
