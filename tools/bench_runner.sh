#!/usr/bin/env bash
# Builds the RelWithDebInfo preset and runs the hot-path benchmark, writing
# BENCH_hotpath.json at the repo root (or to $1 if given), then re-runs the
# scoring loop with OptumConfig::num_threads in {0,2,4} and writes
# BENCH_hotpath_threads.json alongside it. On a single-core machine the
# threads sweep records speedup ~= 1 with an explanatory note in the JSON.
# BENCH_hotpath.json also carries a "forest" section: ns/row of pointer-tree
# forest descent vs the compiled SoA engine over a batch-size sweep.
#
#   tools/bench_runner.sh [output.json]
set -euo pipefail
cd "$(dirname "$0")/.."

cmake --preset relwithdebinfo
cmake --build --preset relwithdebinfo --target bench_hotpath -j "$(nproc)"

out="${1:-$PWD/BENCH_hotpath.json}"
./build/bench/bench_hotpath "${out}"

threads_out="$(dirname "${out}")/BENCH_hotpath_threads.json"
./build/bench/bench_hotpath --threads-sweep "${threads_out}"
