#!/usr/bin/env bash
# Builds the RelWithDebInfo preset and runs the hot-path benchmark, writing
# BENCH_hotpath.json at the repo root (or to $1 if given), then re-runs the
# scoring loop with OptumConfig::num_threads in {0,2,4} and writes
# BENCH_hotpath_threads.json alongside it. On a single-core machine the
# threads sweep records speedup ~= 1 with an explanatory note in the JSON.
# BENCH_hotpath.json also carries a "forest" section: ns/row of pointer-tree
# forest descent vs the compiled SoA engine over a batch-size sweep, and an
# "observability" section with the span-log / series-ring overhead.
#
# After the run, bench_diff compares the fresh numbers against the committed
# BENCH_hotpath.json (saved before the bench overwrites it) and fails the
# script on any throughput regression beyond $BENCH_DIFF_THRESHOLD percent
# (default 30 — the reference numbers come from noisy shared machines).
#
#   tools/bench_runner.sh [output.json]
set -euo pipefail
cd "$(dirname "$0")/.."

# Snapshot the committed baseline before the bench overwrites it in place.
reference=""
if [[ -f BENCH_hotpath.json ]]; then
  reference="$(mktemp /tmp/bench_ref.XXXXXX.json)"
  cp BENCH_hotpath.json "${reference}"
fi

cmake --preset relwithdebinfo
cmake --build --preset relwithdebinfo --target bench_hotpath bench_diff -j "$(nproc)"

out="${1:-$PWD/BENCH_hotpath.json}"
./build/bench/bench_hotpath "${out}"

threads_out="$(dirname "${out}")/BENCH_hotpath_threads.json"
./build/bench/bench_hotpath --threads-sweep "${threads_out}"

if [[ -n "${reference}" ]]; then
  echo
  echo "bench_diff vs committed baseline (threshold ${BENCH_DIFF_THRESHOLD:-30}%):"
  ./build/tools/bench_diff --threshold "${BENCH_DIFF_THRESHOLD:-30}" \
    "${reference}" "${out}"
  rm -f "${reference}"
fi
