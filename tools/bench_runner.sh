#!/usr/bin/env bash
# Builds the RelWithDebInfo preset and runs the hot-path benchmark, writing
# BENCH_hotpath.json at the repo root (or to $1 if given).
#
#   tools/bench_runner.sh [output.json]
set -euo pipefail
cd "$(dirname "$0")/.."

cmake --preset relwithdebinfo
cmake --build --preset relwithdebinfo --target bench_hotpath -j "$(nproc)"

out="${1:-$PWD/BENCH_hotpath.json}"
./build/bench/bench_hotpath "${out}"
