#!/usr/bin/env bash
# Builds the RelWithDebInfo preset and runs the hot-path benchmark, writing
# BENCH_hotpath.json at the repo root (or to the positional output if given),
# then re-runs the scoring loop with OptumConfig::num_threads in {0,2,4} and
# writes BENCH_hotpath_threads.json alongside it. On a single-core machine
# the threads sweep records speedup ~= 1 with an explanatory note in the
# JSON. BENCH_hotpath.json also carries a "forest" section: ns/row of
# pointer-tree forest descent vs the compiled SoA engine (exact and
# quantized variants) over a batch-size sweep, and an "observability"
# section with the span-log / series-ring overhead.
#
# After the run, bench_diff compares the fresh numbers against the committed
# BENCH_hotpath.json (saved before the bench overwrites it) and fails the
# script on any throughput regression beyond $BENCH_DIFF_THRESHOLD percent
# (default 30 — the reference numbers come from noisy shared machines). When
# no baseline is committed, bench_diff says how to record one and passes.
#
#   tools/bench_runner.sh [--forest-only|--serve-only] [--write-baseline] [output.json]
#
#   --forest-only     Run only the forest inference section (minutes faster:
#                     skips scoring/tick reference runs) and write it to
#                     BENCH_hotpath_forest.json; the diff still runs, against
#                     the forest section of the committed baseline.
#   --serve-only      Run only the open-loop placement-service section (skips
#                     the scoring/tick/forest sections; still trains profiles)
#                     and write it to BENCH_hotpath_serve.json; the diff runs
#                     against the serve section of the committed baseline.
#   --write-baseline  Full run that records BENCH_hotpath.json as the new
#                     baseline: skips the regression diff so the fresh
#                     numbers can be committed as-is.
set -euo pipefail
cd "$(dirname "$0")/.."

forest_only=0
serve_only=0
write_baseline=0
out_arg=""
for arg in "$@"; do
  case "${arg}" in
    --forest-only)    forest_only=1 ;;
    --serve-only)     serve_only=1 ;;
    --write-baseline) write_baseline=1 ;;
    -*) echo "usage: $0 [--forest-only|--serve-only] [--write-baseline] [output.json]" >&2
        exit 2 ;;
    *)  out_arg="${arg}" ;;
  esac
done

# Snapshot the committed baseline before the bench overwrites it in place.
reference=""
if [[ -f BENCH_hotpath.json ]]; then
  reference="$(mktemp /tmp/bench_ref.XXXXXX.json)"
  cp BENCH_hotpath.json "${reference}"
fi

cmake --preset relwithdebinfo
cmake --build --preset relwithdebinfo --target bench_hotpath bench_diff -j "$(nproc)"

if [[ "${forest_only}" == 1 ]]; then
  out="${out_arg:-$PWD/BENCH_hotpath_forest.json}"
  ./build/bench/bench_hotpath --forest-only "${out}"
elif [[ "${serve_only}" == 1 ]]; then
  out="${out_arg:-$PWD/BENCH_hotpath_serve.json}"
  ./build/bench/bench_hotpath --serve-only "${out}"
else
  out="${out_arg:-$PWD/BENCH_hotpath.json}"
  ./build/bench/bench_hotpath "${out}"
  threads_out="$(dirname "${out}")/BENCH_hotpath_threads.json"
  ./build/bench/bench_hotpath --threads-sweep "${threads_out}"
fi

if [[ "${write_baseline}" == 1 ]]; then
  rm -f "${reference}"
  echo
  echo "bench_runner: baseline written to ${out} (diff skipped); commit it to"
  echo "make it the reference for future runs."
  exit 0
fi

echo
echo "bench_diff vs committed baseline (threshold ${BENCH_DIFF_THRESHOLD:-30}%):"
# With no committed baseline the snapshot path never existed; hand bench_diff
# a clearly-named missing path so it prints its record-a-baseline hint
# (exit 0) instead of silently diffing the fresh file against itself.
./build/tools/bench_diff --threshold "${BENCH_DIFF_THRESHOLD:-30}" \
  "${reference:-BENCH_hotpath.json.committed-baseline}" "${out}"
rm -f "${reference}"
